"""Seeded load generation and bit-identity spot checks for the server.

Two drive modes:

- **closed loop** (the default): one client thread per tenant submits
  its share of the workload sequentially, waiting for each outcome
  before issuing the next request — concurrency equals the tenant
  count, and offered load adapts to service rate;
- **open loop**: a single thread submits on a seeded arrival schedule
  (exponential inter-arrivals at ``rate`` requests/second) regardless
  of completions — the mode that actually drives queue depth up and
  exercises the shedding gates.

Every workload is a pure function of ``seed``: the shape pool, the
per-request problem choice, priorities, and fault assignment all come
from one seeded generator, so a soak is reproducible request-for-
request.

The **invariant check** is the serving-layer analogue of the replay
guarantee: a sample of served fault-free requests is re-run *solo*
(fresh compile, fresh machine, no cache, no concurrency) and the
:func:`~repro.service.request.stats_fingerprint` of both runs must be
bit-identical.  Any mismatch means concurrent serving corrupted a
schedule — the one thing the subsystem must never do.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Mapping

from repro.machine.engine import CubeNetwork
from repro.obs.ops import format_prometheus
from repro.plans.batch import BatchRequest
from repro.plans.recorder import capture_transpose, synthetic_matrix
from repro.plans.replay import replay_plan
from repro.service.request import (
    AdmissionRejectedError,
    ServeOutcome,
    TransposeRequest,
    stats_fingerprint,
)
from repro.service.scheduler import resolve_request
from repro.service.server import ServerConfig, ServerReport, TransposeServer

__all__ = [
    "LoadReport",
    "LoadSpec",
    "deterministic_counters",
    "run_loadgen",
    "solo_fingerprint",
    "solo_payload_check",
]


@dataclass(frozen=True)
class LoadSpec:
    """One seeded workload description."""

    seed: int = 7
    tenants: int = 4
    requests: int = 200
    mode: str = "closed"  # or "open"
    #: Open-loop offered load (requests/second).
    rate: float = 200.0
    #: Distinct problem shapes in the pool (repeated-shape traffic is
    #: what makes compile-once/serve-many pay off).
    shapes: int = 4
    n: int = 4
    machine: str = "cm"
    #: Probability a request carries a seeded fault spec (fault storm).
    fault_rate: float = 0.0
    #: Relative deadline in seconds (None = no deadline).
    deadline: float | None = None
    priority_levels: int = 2
    #: Served fault-free requests re-run solo for bit-identity.
    verify_sample: int = 8
    #: Composite-pipeline spec (``repro.workloads`` grammar) mixed into
    #: the stream; ``None`` keeps the workload pure-transpose (the
    #: pinned service baselines rely on that default).
    workload: str | None = None
    #: Every k-th request becomes a ``workload`` pipeline request
    #: (``0`` = never; must be positive when ``workload`` is set).
    workload_every: int = 0
    #: Closed-loop client patience: how long a client waits for each
    #: outcome before giving up on it (``repro loadgen
    #: --request-timeout``).  Expiries are counted separately in the
    #: report — the request may still resolve server-side later.
    request_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("loadgen mode must be 'closed' or 'open'")
        if self.tenants < 1 or self.requests < 1:
            raise ValueError("loadgen needs at least one tenant and request")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if self.rate <= 0:
            raise ValueError("open-loop rate must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive seconds")
        if self.workload_every < 0:
            raise ValueError("workload_every must be non-negative")
        if self.workload is not None and self.workload_every < 1:
            raise ValueError(
                "workload_every must be positive when a workload is set"
            )
        if self.workload is not None:
            # Surface spec typos at construction, not mid-soak.
            from repro.workloads import parse_workload

            parse_workload(self.workload)

    @classmethod
    def from_dict(cls, d: Mapping) -> "LoadSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown loadgen field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**d)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


def _shape_pool(spec: LoadSpec, rng: random.Random) -> list[BatchRequest]:
    """``spec.shapes`` distinct valid problems, all on one machine model."""
    from repro.plans.batch import resolve_problem

    layouts = ["2d", "1d-rows", "1d-cols"] if spec.n % 2 == 0 else [
        "1d-rows", "1d-cols"
    ]
    candidates = []
    for bits in range(6, 11):
        for layout in layouts:
            try:
                resolve_problem(spec.n, 1 << bits, layout)
            except ValueError:
                continue  # e.g. too few processor bits for a 1-d layout
            candidates.append(
                BatchRequest(
                    elements=1 << bits,
                    n=spec.n,
                    layout=layout,
                    machine=spec.machine,
                )
            )
    if len(candidates) < spec.shapes:
        raise ValueError(
            f"only {len(candidates)} valid shape(s) exist for n={spec.n}, "
            f"requested a pool of {spec.shapes}"
        )
    return rng.sample(candidates, spec.shapes)


def build_workload(spec: LoadSpec) -> list[TransposeRequest]:
    """The full request sequence — a pure function of the spec."""
    rng = random.Random(spec.seed)
    pool = _shape_pool(spec, rng)
    requests = []
    for rid in range(spec.requests):
        problem = rng.choice(pool)
        if spec.workload is not None and rid % spec.workload_every == 0:
            # The pool draw above still happens so the transpose
            # sub-stream is identical with and without workload mixing.
            problem = BatchRequest(
                n=spec.n, machine=spec.machine, workload=spec.workload
            )
        if spec.fault_rate and rng.random() < spec.fault_rate:
            problem = replace(
                problem,
                faults=(
                    f"seed={rng.randrange(1 << 16)},link_rate=0.03,"
                    f"transient_rate=0.4,window=4"
                ),
            )
        requests.append(
            TransposeRequest(
                tenant=f"tenant-{rid % spec.tenants}",
                problem=problem,
                priority=rng.randrange(spec.priority_levels),
                deadline=spec.deadline,
                request_id=rid,
            )
        )
    return requests


def solo_fingerprint(request: TransposeRequest) -> str:
    """Fingerprint of a solo, uncached, single-threaded serve.

    Mirrors the worker's fault-free path exactly — fresh compile, fresh
    machine, replayed schedule — so a served outcome's fingerprint must
    equal this bit-for-bit.
    """
    from repro.transpose.planner import default_after_layout

    resolved = resolve_request(request)
    if resolved.workload is not None:
        from repro.workloads import build_pipeline

        pipeline = build_pipeline(
            request.problem.workload,
            request.problem.n,
            layout=request.problem.layout,
            elements=request.problem.elements,
        )
        plan, _ = pipeline.compile(resolved.params)
        network = CubeNetwork(resolved.params)
        replay_plan(plan, network)
        return stats_fingerprint(network.stats)
    target = (
        resolved.after
        if resolved.after is not None
        else default_after_layout(resolved.before)
    )
    _, plan = capture_transpose(
        resolved.params,
        synthetic_matrix(resolved.before),
        target,
        algorithm=resolved.algorithm,
    )
    network = CubeNetwork(resolved.params)
    replay_plan(plan, network)
    return stats_fingerprint(network.stats)


def solo_payload_check(request: TransposeRequest) -> dict:
    """Transpose *real* payload bytes solo and compare them to the math.

    The fingerprint check proves the served schedule was untouched; this
    proves the data a tenant would have received is bit-exact.  The same
    problem is run solo on a concrete matrix and the gathered result
    bytes are CRC-compared against ``original.T`` — a wrong byte
    anywhere in the payload flips the digest even when the schedule
    statistics happen to agree.
    """
    import zlib

    import numpy as np

    from repro.transpose.planner import default_after_layout, transpose

    resolved = resolve_request(request)
    if resolved.workload is not None:
        from repro.workloads import build_pipeline

        pipeline = build_pipeline(
            request.problem.workload,
            request.problem.n,
            layout=request.problem.layout,
            elements=request.problem.elements,
        )
        rows, cols = pipeline.shape.rows, pipeline.shape.cols
        original = np.arange(rows * cols, dtype=np.float64).reshape(
            rows, cols
        )
        network = CubeNetwork(resolved.params)
        served = pipeline.execute(network, original)
        served_bytes = np.ascontiguousarray(served).tobytes()
        expected_bytes = np.ascontiguousarray(
            pipeline.reference(original)
        ).tobytes()
        served_crc = zlib.crc32(served_bytes)
        expected_crc = zlib.crc32(expected_bytes)
        return {
            "ok": served_crc == expected_crc
            and served_bytes == expected_bytes,
            "served_crc": served_crc,
            "expected_crc": expected_crc,
        }
    target = (
        resolved.after
        if resolved.after is not None
        else default_after_layout(resolved.before)
    )
    matrix = synthetic_matrix(resolved.before)
    original = matrix.to_global()
    network = CubeNetwork(resolved.params)
    result = transpose(network, matrix, target, algorithm=resolved.algorithm)
    served_bytes = np.ascontiguousarray(result.matrix.to_global()).tobytes()
    expected_bytes = np.ascontiguousarray(original.T).tobytes()
    served_crc = zlib.crc32(served_bytes)
    expected_crc = zlib.crc32(expected_bytes)
    return {
        "ok": served_crc == expected_crc
        and served_bytes == expected_bytes,
        "served_crc": served_crc,
        "expected_crc": expected_crc,
    }


@dataclass
class LoadReport:
    """Everything one loadgen session learned."""

    spec: LoadSpec
    server: ServerReport
    verified: int = 0
    invariant_violations: int = 0
    mismatches: list | None = None
    #: Closed-loop client waits that hit ``spec.request_timeout``.
    expired: int = 0
    #: Sampled requests re-run solo on real data with byte comparison.
    payload_checked: int = 0
    #: Merged dual-axis Perfetto trace document (None when the server
    #: ran with tracing off).  Not part of :meth:`as_dict` — the CLI
    #: writes it to its own file via ``--trace``.
    trace: dict | None = None
    #: Prometheus text snapshot of the merged worker registries, taken
    #: after the drain (``repro loadgen --metrics-out``).
    metrics_text: str = ""

    @property
    def ok(self) -> bool:
        return self.invariant_violations == 0

    def summary(self) -> str:
        slo = self.server.slo()
        lat = slo["latency_s"]["total"]
        return (
            f"{slo['requests']} request(s): {slo['served']} served, "
            f"{slo['rejected']} shed, {slo['deadline_missed']} missed "
            f"deadline, {slo['failed']} failed; cache hit rate "
            f"{slo['cache_hit_rate']:.1%}; total latency p50 "
            f"{lat['p50'] * 1e3:.1f} ms / p95 {lat['p95'] * 1e3:.1f} ms / "
            f"p99 {lat['p99'] * 1e3:.1f} ms; invariants: "
            f"{self.verified} spot-checked "
            f"({self.payload_checked} payload-byte), "
            f"{self.invariant_violations} violation(s)"
            + (
                f"; {self.expired} client wait(s) expired"
                if self.expired
                else ""
            )
        )

    def as_dict(self, *, with_outcomes: bool = False) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "server": self.server.as_dict(with_outcomes=with_outcomes),
            "verification": {
                "checked": self.verified,
                "payload_checked": self.payload_checked,
                "violations": self.invariant_violations,
                "mismatches": self.mismatches or [],
                "expired": self.expired,
            },
            "ok": self.ok,
        }


def _drive_closed(
    server: TransposeServer, requests: list[TransposeRequest], spec: LoadSpec
) -> int:
    """One client thread per tenant, each waiting out its own requests.

    Returns how many waits expired client-side (``spec.request_timeout``
    elapsed with no outcome) — the request itself may still resolve
    server-side afterwards, so expiries are an independent count, not a
    server outcome.
    """
    by_tenant: dict[str, list[TransposeRequest]] = {}
    for request in requests:
        by_tenant.setdefault(request.tenant, []).append(request)
    expired = itertools.count()
    expired_total = 0

    def client(mine: list[TransposeRequest]) -> None:
        for request in mine:
            try:
                pending = server.submit(request)
            except AdmissionRejectedError:
                continue  # shed: counted by the server, move on
            try:
                pending.result(timeout=spec.request_timeout)
            except TimeoutError:
                next(expired)  # count() is GIL-atomic across clients

    threads = [
        threading.Thread(target=client, args=(mine,), daemon=True)
        for mine in by_tenant.values()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expired_total = next(expired)
    return expired_total


def _drive_open(
    server: TransposeServer,
    requests: list[TransposeRequest],
    spec: LoadSpec,
) -> None:
    """Submit on a seeded arrival schedule; never wait for completions."""
    rng = random.Random(spec.seed ^ 0x5EED)
    for request in requests:
        try:
            server.submit(request)
        except AdmissionRejectedError:
            pass
        time.sleep(rng.expovariate(spec.rate))


def _verify(
    spec: LoadSpec,
    requests: list[TransposeRequest],
    outcomes: list[ServeOutcome],
) -> tuple[int, int, list, int]:
    by_id = {r.request_id: r for r in requests}
    candidates = [
        o
        for o in outcomes
        if o.status == "served"
        and o.resolved == "clean"
        and not by_id[o.request_id].problem.faults
    ]
    rng = random.Random(spec.seed + 1)
    sample = (
        candidates
        if len(candidates) <= spec.verify_sample
        else rng.sample(candidates, spec.verify_sample)
    )
    mismatches = []
    payload_checked = 0
    for outcome in sample:
        expected = solo_fingerprint(by_id[outcome.request_id])
        if expected != outcome.fingerprint:
            mismatches.append(
                {
                    "kind": "fingerprint",
                    "request_id": outcome.request_id,
                    "tenant": outcome.tenant,
                    "served": outcome.fingerprint,
                    "solo": expected,
                }
            )
            continue  # schedule already wrong; payload check is moot
        # The fingerprint proved the schedule; now prove the bytes.  A
        # solo run of the same problem on real data must produce
        # exactly ``original.T`` — any silent payload damage the
        # serving stack let through would surface here.
        payload = solo_payload_check(by_id[outcome.request_id])
        payload_checked += 1
        if not payload["ok"]:
            mismatches.append(
                {
                    "kind": "payload",
                    "request_id": outcome.request_id,
                    "tenant": outcome.tenant,
                    "served": payload["served_crc"],
                    "solo": payload["expected_crc"],
                }
            )
    return len(sample), len(mismatches), mismatches, payload_checked


def run_loadgen(
    spec: LoadSpec, config: ServerConfig | None = None
) -> LoadReport:
    """Drive a server with the seeded workload and verify a sample."""
    server = TransposeServer(config)
    requests = build_workload(spec)
    expired = 0
    with server:
        if spec.mode == "closed":
            expired = _drive_closed(server, requests, spec)
        else:
            _drive_open(server, requests, spec)
        server.drain()
    report = server.report()
    verified, violations, mismatches, payload_checked = _verify(
        spec, requests, report.outcomes
    )
    return LoadReport(
        spec=spec,
        server=report,
        verified=verified,
        invariant_violations=violations,
        mismatches=mismatches,
        expired=expired,
        payload_checked=payload_checked,
        trace=server.trace_document() if server.config.trace else None,
        metrics_text=format_prometheus(server.metrics()),
    )


def deterministic_counters(
    spec: LoadSpec, config: ServerConfig | None = None
) -> dict:
    """Integer-exact serving counters for the perf-regression gate.

    Wall-clock latencies are noise, but *what happened* is not: with a
    single worker, a frozen logical clock, submission completed before
    the worker starts, and no rate gate, every counter below is a pure
    function of (spec, config) — which requests were admitted or shed,
    what was served from cache, how much modelled time the fleet
    charged.  This is what the two service baseline scenarios pin.
    """
    if config is None:
        config = ServerConfig()
    config = replace(config, workers=1, tenant_rate=None)
    server = TransposeServer(config, clock=lambda: 0.0)
    requests = build_workload(spec)
    admitted = 0
    rejected: dict[str, int] = {}
    for request in requests:
        try:
            server.submit(request)
            admitted += 1
        except AdmissionRejectedError as exc:
            rejected[exc.reason] = rejected.get(exc.reason, 0) + 1
    server.start()
    server.drain()
    server.stop()
    report = server.report()
    served = [o for o in report.outcomes if o.status == "served"]
    counters: dict = {
        "requests": len(requests),
        "admitted": admitted,
        "served": len(served),
        "failed": sum(1 for o in report.outcomes if o.status == "failed"),
        "cache_hits": sum(1 for o in served if o.cache_hit),
        "cache_misses": sum(1 for o in served if not o.cache_hit),
        "modelled_time_total": sum(o.modelled_time for o in served),
        "recovered": sum(
            1
            for o in served
            if o.resolved == "resume" or o.resolved.startswith("surgery-")
        ),
        "laddered": sum(1 for o in served if o.resolved == "ladder"),
    }
    for reason in sorted(rejected):
        counters[f"rejected_{reason}"] = rejected[reason]
    counters["rejected"] = sum(rejected.values())
    # Resilience counters are zero-suppressed: the pinned baseline
    # scenarios have no chaos, so their files stay byte-identical,
    # while a run that did restart workers or quarantine requests
    # shows it here (and the gate would flag it as a breach).
    for status in ("poisoned", "stopped"):
        count = sum(1 for o in report.outcomes if o.status == status)
        if count:
            counters[status] = count
    retried = sum(1 for o in report.outcomes if o.attempts > 1)
    if retried:
        counters["retried"] = retried
    resilience = report.resilience or {}
    supervisor = resilience.get("supervisor") or {}
    if supervisor.get("restarts"):
        counters["worker_restarts"] = supervisor["restarts"]
    if supervisor.get("quarantined"):
        counters["poison_quarantined"] = supervisor["quarantined"]
    breaker = resilience.get("breaker") or {}
    if breaker.get("trips"):
        counters["breaker_trips"] = breaker["trips"]
    brownout = resilience.get("brownout") or {}
    if brownout.get("steps"):
        counters["brownout_steps"] = brownout["steps"]
    return counters
