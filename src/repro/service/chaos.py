"""Service-level chaos: kill, hang, and poison the serving stack itself.

The engine chaos soak (``repro chaos``) batters the *simulated
machine* — link faults, corruption, node loss.  This module is its
serving-layer twin (``repro chaos --service``): under one seeded
schedule it kills worker threads mid-request, hangs them past the
watchdog, and injects crash/slow/poison *requests*, then checks the
invariant the resilience layer exists to uphold:

    every admitted request resolves **exactly once**, with a terminal
    outcome, and — when it completed — a bit-identical payload to a
    solo run.

Injection is cooperative: :class:`ChaosInjector` rides the worker's
``chaos`` hook, which is called inside the per-request try.  A plain
``Exception`` there becomes a ``"failed"`` outcome (a crash *request*);
a :class:`~repro.service.resilience.WorkerCrashed` escapes the handler
and takes the worker down (a worker *kill*); a ``sleep`` wedges the
worker under the supervisor's watchdog (a *hang*).  Draws are keyed on
``(seed, worker id, request id)`` so a schedule replays exactly — the
same workload with the same seed kills the same workers at the same
requests.

A poison request is marked in the workload itself: every execution
attempt of it kills its worker, which is what drives it into the
supervisor's :class:`~repro.service.resilience.PoisonRequestError`
quarantine.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.service.loadgen import LoadSpec, build_workload, solo_fingerprint
from repro.service.request import TransposeRequest
from repro.service.resilience import WorkerCrashed
from repro.service.server import ServerConfig, TransposeServer

__all__ = ["ChaosInjector", "ChaosReport", "ServiceChaosSpec", "run_service_chaos"]


@dataclass(frozen=True)
class ServiceChaosSpec:
    """One seeded service-chaos schedule."""

    seed: int = 11
    requests: int = 48
    tenants: int = 3
    shapes: int = 3
    n: int = 4
    machine: str = "cm"
    #: Probability a (worker, request) execution kills the worker.
    kill_rate: float = 0.08
    #: Probability an execution hangs for ``hang_seconds`` instead.
    hang_rate: float = 0.0
    hang_seconds: float = 0.3
    #: Probability a *request* is poisonous (kills every worker that
    #: ever executes it, until quarantined).
    poison_rate: float = 0.04
    #: Probability a request fails with a plain exception (a crash
    #: request — a request bug, not a worker death).
    crash_rate: float = 0.0
    #: Probability an execution is slowed by ``slow_seconds`` (stays
    #: under the watchdog; exercises latency, not supervision).
    slow_rate: float = 0.0
    slow_seconds: float = 0.02
    #: Served outcomes re-run solo for bit-identity (0 checks none).
    verify_sample: int = 6

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "poison_rate", "crash_rate",
                     "slow_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.hang_seconds < 0 or self.slow_seconds < 0:
            raise ValueError("hang/slow durations must be non-negative")
        if self.requests < 1:
            raise ValueError("chaos needs at least one request")

    @classmethod
    def from_dict(cls, d: Mapping) -> "ServiceChaosSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                "unknown service chaos field(s): "
                + ", ".join(sorted(unknown))
            )
        return cls(**d)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}

    def load_spec(self) -> LoadSpec:
        """The underlying seeded workload (no faults — chaos is ours)."""
        return LoadSpec(
            seed=self.seed,
            tenants=self.tenants,
            requests=self.requests,
            shapes=self.shapes,
            n=self.n,
            machine=self.machine,
            verify_sample=self.verify_sample,
        )

    def poison_ids(self, requests: list[TransposeRequest]) -> set[int]:
        """Deterministic poison marking over the workload."""
        rng = random.Random(self.seed ^ 0x90150)
        return {
            r.request_id
            for r in requests
            if self.poison_rate and rng.random() < self.poison_rate
        }


class ChaosInjector:
    """The worker-side hook applying one seeded chaos schedule.

    Stateless across calls except for the tallies: each (worker,
    request, attempt) draw is an independent seeded generator, so the
    schedule does not depend on thread interleaving.
    """

    def __init__(self, spec: ServiceChaosSpec, poison: set[int]) -> None:
        self.spec = spec
        self.poison = poison
        self.kills = 0
        self.hangs = 0
        self.crashes = 0

    def _rng(self, wid: int, request_id: int, attempt: int) -> random.Random:
        return random.Random(
            (self.spec.seed * 0x9E3779B1)
            ^ (wid * 0xC2B2AE35)
            ^ (request_id * 0x85EBCA77)
            ^ attempt
        )

    def __call__(self, worker, entry) -> None:
        request = entry.request
        if request.request_id in self.poison:
            self.kills += 1
            raise WorkerCrashed(
                f"poison request {request.request_id} killed worker "
                f"{worker.wid}"
            )
        rng = self._rng(worker.wid, request.request_id, entry.attempt)
        draw = rng.random()
        spec = self.spec
        if draw < spec.kill_rate:
            self.kills += 1
            raise WorkerCrashed(
                f"chaos killed worker {worker.wid} during request "
                f"{request.request_id}"
            )
        draw -= spec.kill_rate
        if draw < spec.hang_rate:
            self.hangs += 1
            time.sleep(spec.hang_seconds)
            return
        draw -= spec.hang_rate
        if draw < spec.crash_rate:
            self.crashes += 1
            raise RuntimeError(
                f"chaos crash request {request.request_id}"
            )
        draw -= spec.crash_rate
        if draw < spec.slow_rate:
            time.sleep(spec.slow_seconds)


@dataclass
class ChaosReport:
    """What the soak did and whether the exactly-once invariant held."""

    spec: ServiceChaosSpec
    admitted: int
    outcomes: int
    by_status: dict
    kills: int
    hangs: int
    crash_requests: int
    #: Workers the pool lost and never replaced (nonzero proves the
    #: run needed — and lacked — supervision).
    workers_lost: int
    workers_spawned: int
    stuck_futures: int
    double_resolved: int
    fingerprint_checked: int
    fingerprint_mismatches: int
    poison_ids: list
    poison_unquarantined: int
    resilience: dict | None
    supervisor_events: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """The soak invariant: exactly-once, terminal, bit-identical."""
        return (
            self.outcomes == self.admitted
            and self.stuck_futures == 0
            and self.double_resolved == 0
            and self.fingerprint_mismatches == 0
            and self.poison_unquarantined == 0
        )

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "admitted": self.admitted,
            "outcomes": self.outcomes,
            "by_status": self.by_status,
            "kills": self.kills,
            "hangs": self.hangs,
            "crash_requests": self.crash_requests,
            "workers_lost": self.workers_lost,
            "workers_spawned": self.workers_spawned,
            "stuck_futures": self.stuck_futures,
            "double_resolved": self.double_resolved,
            "fingerprint_checked": self.fingerprint_checked,
            "fingerprint_mismatches": self.fingerprint_mismatches,
            "poison_ids": self.poison_ids,
            "poison_unquarantined": self.poison_unquarantined,
            "resilience": self.resilience,
            "wall_seconds": self.wall_seconds,
            "ok": self.ok,
        }

    def summary(self) -> str:
        status = ", ".join(
            f"{count} {name}" for name, count in sorted(self.by_status.items())
        )
        return (
            f"{self.admitted} admitted -> {self.outcomes} outcome(s) "
            f"({status}); {self.kills} worker kill(s), {self.hangs} "
            f"hang(s), {self.workers_spawned} replacement(s), "
            f"{self.workers_lost} worker(s) lost; invariants: "
            f"{self.stuck_futures} stuck, {self.double_resolved} "
            f"double-resolved, {self.fingerprint_mismatches}/"
            f"{self.fingerprint_checked} fingerprint mismatch(es) -> "
            f"{'OK' if self.ok else 'VIOLATED'}"
        )


def run_service_chaos(
    spec: ServiceChaosSpec, config: ServerConfig | None = None
) -> ChaosReport:
    """One seeded service-chaos soak against a live server."""
    from time import perf_counter

    if config is None:
        config = ServerConfig(workers=4, watchdog=0.15)
    requests = build_workload(spec.load_spec())
    poison = spec.poison_ids(requests)
    injector = ChaosInjector(spec, poison)
    server = TransposeServer(config)
    server.set_chaos(injector)
    started = perf_counter()
    pendings: list = []
    admitted: list[TransposeRequest] = []
    with server:
        for request in requests:
            try:
                pendings.append(server.submit(request))
                admitted.append(request)
            except Exception:
                continue  # shed at admission: not part of the invariant
        # Bounded: a healthy run drains fast; a broken one must not
        # wedge the soak, so the drain deadline scales with the load.
        budget = 20.0 + 0.5 * len(admitted) + 4.0 * spec.hang_seconds
        server.drain(timeout=budget)
    wall = perf_counter() - started

    # -- invariants ----------------------------------------------------------
    stuck = sum(1 for p in pendings if not p.done())
    results = [p.result(timeout=0.0) for p in pendings if p.done()]
    # Exactly-once: a double resolution would either overwrite (made
    # impossible by PendingResult's first-wins lock) or surface as more
    # outcomes recorded than requests admitted.
    report = server.report()
    double = max(0, len(report.outcomes) - len(admitted))
    by_status: dict[str, int] = {}
    for outcome in results:
        by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
    by_id = {r.request_id: r for r in admitted}
    served = [o for o in results if o.status == "served"]
    rng = random.Random(spec.seed + 99)
    sample = (
        served
        if len(served) <= spec.verify_sample
        else rng.sample(served, spec.verify_sample)
    )
    mismatches = 0
    for outcome in sample:
        if solo_fingerprint(by_id[outcome.request_id]) != outcome.fingerprint:
            mismatches += 1
    # Poison requests must end quarantined (or failed by an exhausted
    # budget when the threshold never triggers) — never served, never
    # unresolved.
    unquarantined = sum(
        1
        for o in results
        if o.request_id in poison and o.status == "served"
    )
    with server._pool_lock:
        pool = list(server.workers)
        retired = list(server.retired)
    spawned = max(0, len(pool) + len(retired) - config.workers)
    # Workers that died and were never replaced: dead members still in
    # the pool (a supervisor would have retired and replaced them).
    lost = sum(1 for w in pool if w.dead)
    supervisor = server.supervisor
    return ChaosReport(
        spec=spec,
        admitted=len(admitted),
        outcomes=len(report.outcomes),
        by_status=by_status,
        kills=injector.kills,
        hangs=injector.hangs,
        crash_requests=injector.crashes,
        workers_lost=lost,
        workers_spawned=spawned,
        stuck_futures=stuck,
        double_resolved=double,
        fingerprint_checked=len(sample),
        fingerprint_mismatches=mismatches,
        poison_ids=sorted(poison),
        poison_unquarantined=unquarantined,
        resilience=report.resilience,
        supervisor_events=list(supervisor.log) if supervisor else [],
        wall_seconds=wall,
    )
