"""Request/outcome vocabulary and typed errors for the serving layer.

A :class:`TransposeRequest` wraps the batch layer's problem description
(:class:`~repro.plans.batch.BatchRequest`) with the serving-side fields
the paper's one-shot pipeline never needed: a *tenant* (the isolation
and accounting unit), a *priority* (lower is more urgent), and an
optional *deadline* (a wall-clock budget in seconds, measured from
admission).  Outcomes carry the full latency breakdown — queue wait,
execution, total — plus a deterministic fingerprint of the modelled
statistics so the load generator can spot-check served requests
bit-identically against solo runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.plans.batch import BatchRequest

__all__ = [
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "ServeOutcome",
    "ServiceError",
    "TransposeRequest",
    "stats_fingerprint",
]


class ServiceError(RuntimeError):
    """Base class for serving-layer failures."""


class AdmissionRejectedError(ServiceError):
    """The request was shed at the door instead of being queued.

    ``reason`` is one of ``"queue_full"`` (global high-water mark),
    ``"tenant_quota"`` (per-tenant pending cap) or ``"rate_limited"``
    (per-tenant token bucket empty), so callers and counters can tell
    global backpressure from per-tenant throttling.
    """

    def __init__(self, reason: str, tenant: str, detail: str = "") -> None:
        self.reason = reason
        self.tenant = tenant
        message = f"request from tenant {tenant!r} rejected: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class DeadlineExceededError(ServiceError):
    """The request's deadline passed before it could be served."""

    def __init__(self, tenant: str, budget: float, waited: float) -> None:
        self.tenant = tenant
        self.budget = budget
        self.waited = waited
        super().__init__(
            f"request from tenant {tenant!r} missed its {budget:.3f}s "
            f"deadline after {waited:.3f}s in queue"
        )


#: Counters excluded from fingerprints: they measure the *observation*
#: of a run (wall-clock tracing), not the run itself, so a traced serve
#: must still hash identically to an untraced solo replay.
_VOLATILE_COUNTERS = ("traced_requests", "trace_wall_seconds")


def stats_fingerprint(stats) -> str:
    """Deterministic content hash of a run's modelled statistics.

    Two executions of the same compiled plan on the same machine model
    produce bit-identical :class:`~repro.machine.metrics.TransferStats`
    (PR 2's replay guarantee), so equal fingerprints mean the serving
    path did not corrupt the schedule.  The hash covers the canonical
    JSON of every counter, including the per-link loads — minus the
    observation-side tracing counters, which depend on whether anyone
    was watching.
    """
    counters = stats.as_dict()
    for name in _VOLATILE_COUNTERS:
        counters.pop(name, None)
    doc = json.dumps(counters, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()


@dataclass(frozen=True)
class TransposeRequest:
    """One tenant-attributed transpose request.

    ``problem`` carries the machine/layout/algorithm description in the
    batch layer's vocabulary (including an optional ``faults`` spec);
    ``deadline`` is a relative budget in seconds — ``None`` means the
    request waits as long as it must.
    """

    tenant: str
    problem: BatchRequest
    priority: int = 1
    deadline: float | None = None
    request_id: int = 0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("request tenant must be non-empty")
        if self.priority < 0:
            raise ValueError("request priority must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("request deadline must be positive seconds")

    @classmethod
    def from_dict(cls, d: Mapping) -> "TransposeRequest":
        own = {"tenant", "priority", "deadline", "request_id"}
        problem = {k: v for k, v in d.items() if k not in own}
        return cls(
            tenant=d.get("tenant", ""),
            problem=BatchRequest.from_dict(problem),
            priority=d.get("priority", 1),
            deadline=d.get("deadline"),
            request_id=d.get("request_id", 0),
        )

    def as_dict(self) -> dict:
        doc = {
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline": self.deadline,
            "request_id": self.request_id,
        }
        doc.update(
            (f, getattr(self.problem, f))
            for f in self.problem.__dataclass_fields__
        )
        return doc


@dataclass
class ServeOutcome:
    """What happened to one admitted request.

    ``status`` is ``"served"``, ``"deadline_missed"`` (shed at dequeue,
    never executed), ``"failed"`` (the executor raised, or the retry
    budget ran out; ``error`` holds the exception text),
    ``"poisoned"`` (quarantined after killing too many workers — see
    :class:`~repro.service.resilience.PoisonRequestError`) or
    ``"stopped"`` (the server stopped or a drain timed out with the
    request unserved).  Latencies are wall-clock seconds;
    ``modelled_time`` is the simulator's own cost-model time.
    """

    request_id: int
    tenant: str
    status: str
    worker: int = -1
    algorithm: str = ""
    cache_hit: bool = False
    #: How a faulted request completed (``clean`` for fault-free ones;
    #: ``resume`` / ``degraded`` / ``ladder`` otherwise).
    resolved: str = "clean"
    modelled_time: float = 0.0
    queue_wait_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    key: str = ""
    #: ``stats_fingerprint`` of the run (empty for unexecuted requests).
    fingerprint: str = ""
    error: str = ""
    #: Recovery accounting dict when served resume-based, else None.
    recovery: dict | None = field(default=None)
    #: Trace the request's spans were stamped with ("" when the server
    #: ran untraced).
    trace_id: str = ""
    #: Execution attempts this request consumed (>1 after supervisor
    #: re-dispatch; 1 for requests resolved without a retry).
    attempts: int = 1

    @property
    def served(self) -> bool:
        return self.status == "served"

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "worker": self.worker,
            "algorithm": self.algorithm,
            "cache_hit": self.cache_hit,
            "resolved": self.resolved,
            "modelled_time": self.modelled_time,
            "queue_wait_s": self.queue_wait_s,
            "execute_s": self.execute_s,
            "total_s": self.total_s,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "error": self.error,
            "recovery": self.recovery,
            "trace_id": self.trace_id,
            "attempts": self.attempts,
        }
