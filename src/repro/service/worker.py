"""Worker threads: one simulated cube machine per request, one hub each.

Every worker owns a private :class:`~repro.obs.instrumentation.Instrumentation`
hub (the hub's span stack is deliberately not thread-safe, so hubs are
never shared) and builds a **fresh** :class:`~repro.machine.engine.CubeNetwork`
per request — simulated machines are cheap, and fresh state is what
makes served results bit-identical to solo runs.  The only shared
object on the hot path is the thread-safe
:class:`~repro.plans.cache.PlanCache`, reached with per-call
``observer=`` so cache events land in the owning worker's telemetry.

Fault handling mirrors the batch layer but with strict isolation: a
request carrying a ``faults`` spec gets its *own*
:class:`~repro.machine.faults.FaultPlan` parsed per request (never a
plan shared with another machine — see :meth:`FaultPlan.fork`), and is
served through :func:`~repro.plans.replay.replay_degraded`, which under
a :class:`~repro.recovery.policy.RecoveryPolicy` routes execution
through ``execute_with_recovery`` before falling back to the planner
ladder.

Each request is a ``serve`` span (category ``service``) with the SLO
instruments recorded on the worker's registry:

- ``service_requests{tenant=,outcome=}`` — admitted work by final status;
- ``service_cache_hits{tenant=}`` — compile-once/serve-many hit count;
- ``service_queue_wait_s`` / ``service_execute_s`` / ``service_total_s``
  — wall-clock latency histograms;
- ``service_deadline_missed{tenant=}`` — requests shed at dequeue.

With ``trace=True`` the worker's hub runs with the wall-clock axis
armed and every dequeued request is served inside its
:class:`~repro.obs.trace.TraceContext`: a root ``request`` span
(backdated to submission on the wall axis) contains synthesized
``admission`` and ``queue-wait`` leaves, the ``plan-resolve`` /
``execute`` stages, and — via the attached network — the engine's own
phase leaves and any recovery spans, all stamped with the request's
``trace_id``.  A bounded :class:`~repro.obs.trace.FlightRecorder`
always rides on the hub; its ring is dumped into
:attr:`Worker.flight_reports` whenever a request ends badly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import nullcontext
from time import perf_counter

from repro.machine.engine import CubeNetwork
from repro.obs.instrumentation import Instrumentation
from repro.obs.trace import FlightRecorder
from repro.plans.cache import PlanCache
from repro.plans.recorder import capture_transpose, synthetic_matrix
from repro.plans.replay import replay_plan
from repro.service.queue import QueueEntry
from repro.service.request import ServeOutcome, stats_fingerprint
from repro.service.scheduler import ResolvedRequest, Scheduler

__all__ = ["Worker"]

#: Flight dumps retained per worker (each holds one ring snapshot).
_MAX_FLIGHT_REPORTS = 16


class Worker(threading.Thread):
    """One serving thread; drains the scheduler until it closes."""

    def __init__(
        self,
        wid: int,
        scheduler: Scheduler,
        cache: PlanCache,
        *,
        recovery=None,
        on_outcome=None,
        on_death=None,
        chaos=None,
        clock=time.monotonic,
        trace: bool = False,
        flight_capacity: int = 256,
    ) -> None:
        super().__init__(name=f"repro-serve-{wid}", daemon=True)
        self.wid = wid
        self.scheduler = scheduler
        self.cache = cache
        self.recovery = recovery
        self.on_outcome = on_outcome
        self.on_death = on_death
        #: Injection hook ``chaos(worker, entry)`` called inside the
        #: per-request try: a plain ``Exception`` fails the request, a
        #: :class:`~repro.service.resilience.WorkerCrashed` kills the
        #: worker, a ``sleep`` hangs it under the watchdog.
        self.chaos = chaos
        self.clock = clock
        self.tracing = trace
        # Supervision state.  ``dead``/``death_error`` are set by the
        # run() wrapper on any unhandled exception; ``finished`` marks a
        # run loop that returned (cleanly or not); ``abandoned`` is set
        # by the supervisor when it retires this worker — the loop
        # checks it between requests so a recovered hang stops serving
        # work that has been handed to its replacement.
        self.dead = False
        self.death_error: str | None = None
        self.finished = False
        self.abandoned = False
        self.last_beat: float | None = None
        self.executing_since: float | None = None
        self._executing: QueueEntry | None = None
        self._assigned: list[QueueEntry] = []
        self._inflight_lock = threading.Lock()
        self.flight = FlightRecorder(flight_capacity)
        self.flight_reports: deque = deque(maxlen=_MAX_FLIGHT_REPORTS)
        # Untraced, per-phase leaf spans would dominate memory on long
        # soaks, so they stay off and the hub has no wall axis — exactly
        # the seed behaviour the pinned baselines were recorded against.
        # Tracing arms both: phase leaves give the execute span its
        # engine-phase children, and the injectable clock gives every
        # span a wall interval.
        self.instr = Instrumentation(
            self.flight,
            phase_spans=trace,
            wall_clock=clock if trace else None,
        )
        self.served = 0

    # -- thread loop ---------------------------------------------------------

    def run(self) -> None:
        """Supervised outer loop: any escape marks this worker dead.

        The per-request try inside :meth:`_serve_inner` already turns
        request-level exceptions into ``"failed"`` outcomes; everything
        that still reaches here — a crash injected as a
        ``BaseException``, or a bug *outside* the per-request try such
        as ``next_batch`` raising — is a worker death, not a request
        failure.  The worker flags itself and notifies the supervisor
        instead of silently ending the thread and shrinking the pool.
        """
        try:
            self._run_loop()
        except BaseException as exc:
            self.dead = True
            self.death_error = f"{type(exc).__name__}: {exc}"
            if self.on_death is not None:
                try:
                    self.on_death(self, exc)
                except Exception:  # pragma: no cover - notify best-effort
                    pass
        finally:
            self.finished = True

    def _run_loop(self) -> None:
        while not self.abandoned:
            self.last_beat = self.clock()
            batch = self.scheduler.next_batch(timeout=0.05)
            if not batch:
                if self.scheduler.queue.closed:
                    return
                continue
            with self._inflight_lock:
                self._assigned = list(batch)
            for entry in batch:
                if self.abandoned:
                    # Retired mid-batch (e.g. a hang that came back):
                    # the rest of the batch now belongs to the
                    # replacement worker.
                    return
                with self._inflight_lock:
                    self._executing = entry
                    self.executing_since = self.clock()
                outcome = self.serve_entry(entry)
                with self._inflight_lock:
                    self._executing = None
                    self.executing_since = None
                    if entry in self._assigned:
                        self._assigned.remove(entry)
                self._deliver(entry, outcome)
            # Cleared only on a batch that completed; a crash escaping
            # mid-batch must leave the in-flight state for the
            # supervisor's take_inflight().
            with self._inflight_lock:
                self._assigned = []

    def _deliver(self, entry: QueueEntry, outcome: ServeOutcome) -> None:
        """Idempotent hand-off: only the fulfilment winner records.

        An abandoned attempt limping home after the supervisor already
        re-dispatched (or terminally resolved) the request loses the
        race and its outcome is dropped — counted, not recorded, so
        every request still resolves exactly once.
        """
        if self.scheduler.fulfill(entry, outcome):
            if self.on_outcome is not None:
                self.on_outcome(outcome)
        else:
            self.instr.metrics.counter(
                "service_late_results", tenant=outcome.tenant
            ).inc()

    def take_inflight(self) -> tuple[QueueEntry | None, list[QueueEntry]]:
        """Supervisor-side: harvest and clear this worker's live work.

        Returns ``(executing, innocent)``: the entry that was on the
        machine when the worker died or hung (``None`` if it was idle),
        and the batch-mates it had been assigned but never started —
        they are innocent of the death and are requeued without
        consuming retry budget.
        """
        with self._inflight_lock:
            executing = self._executing
            innocent = [e for e in self._assigned if e is not executing]
            self._executing = None
            self.executing_since = None
            self._assigned = []
        return executing, innocent

    # -- one request ---------------------------------------------------------

    def serve_entry(self, entry: QueueEntry) -> ServeOutcome:
        resolved = entry.payload
        assert isinstance(resolved, ResolvedRequest)
        trace = resolved.trace if self.tracing else None
        with self.instr.in_trace(trace):
            if trace is None:
                outcome = self._serve_inner(entry, resolved, traced=False)
            else:
                # Root of the request's trace tree.  On the wall axis it
                # is backdated to when the client called submit(), so the
                # admission and queue-wait leaves it contains are honest.
                submitted_wall = entry.submitted - resolved.resolve_s
                with self.instr.span(
                    "request",
                    category="request",
                    wall_start=submitted_wall,
                    tenant=trace.tenant,
                    request_id=trace.request_id,
                    priority=trace.priority,
                    worker=self.wid,
                ) as root:
                    outcome = self._serve_inner(entry, resolved, traced=True)
                    root.annotate(status=outcome.status)
                outcome.trace_id = trace.trace_id
        # A request "ended badly" when it failed outright, missed its
        # deadline, or its recovery escalated past in-place resume on
        # the documented ladder (route-around surgery or a re-plan).
        outcome.attempts = entry.attempt + 1
        if outcome.status in ("failed", "deadline_missed") or (
            outcome.resolved in ("surgery-detour", "ladder")
        ):
            self._dump_flight(outcome)
        return outcome

    def _dump_flight(self, outcome: ServeOutcome) -> None:
        """Snapshot the flight ring around a request that ended badly."""
        self.flight_reports.append(
            self.flight.dump(
                worker=self.wid,
                request_id=outcome.request_id,
                trace_id=outcome.trace_id,
                tenant=outcome.tenant,
                status=outcome.status,
                resolved=outcome.resolved,
                error=outcome.error,
            )
        )

    def _serve_inner(
        self, entry: QueueEntry, resolved: ResolvedRequest, *, traced: bool
    ) -> ServeOutcome:
        request = entry.request
        now = self.clock()
        queue_wait = max(0.0, now - entry.submitted)
        metrics = self.instr.metrics
        metrics.histogram("service_queue_wait_s").observe(queue_wait)
        if traced:
            # Stages that happened before this worker saw the request,
            # reconstructed as leaves: zero-width in model time, honest
            # wall intervals.
            self.instr.leaf(
                "admission",
                "request",
                wall_start=entry.submitted - resolved.resolve_s,
                wall_end=entry.submitted,
                resolve_s=resolved.resolve_s,
            )
            self.instr.leaf(
                "queue-wait",
                "request",
                wall_start=entry.submitted,
                wall_end=max(now, entry.submitted),
                waited_s=queue_wait,
            )

        if entry.deadline_at is not None and now > entry.deadline_at:
            metrics.counter(
                "service_deadline_missed", tenant=request.tenant
            ).inc()
            metrics.counter(
                "service_requests",
                tenant=request.tenant,
                outcome="deadline_missed",
            ).inc()
            self.instr.event(
                "deadline-missed",
                "service",
                tenant=request.tenant,
                request_id=request.request_id,
                waited=queue_wait,
            )
            return ServeOutcome(
                request_id=request.request_id,
                tenant=request.tenant,
                status="deadline_missed",
                worker=self.wid,
                queue_wait_s=queue_wait,
                total_s=queue_wait,
                key=entry.key,
                error=(
                    f"deadline {request.deadline:.3f}s exceeded after "
                    f"{queue_wait:.3f}s in queue"
                ),
            )

        started = perf_counter()
        try:
            if self.chaos is not None:
                # Inside the per-request try on purpose: an injected
                # plain Exception is a request failure; an injected
                # WorkerCrashed (a BaseException) escapes this handler
                # and takes the worker down; a sleep hangs it here
                # under the supervisor's watchdog.
                self.chaos(self, entry)
            outcome = self._execute(resolved, queue_wait, traced=traced)
        except Exception as exc:
            execute_s = perf_counter() - started
            metrics.counter(
                "service_requests", tenant=request.tenant, outcome="failed"
            ).inc()
            return ServeOutcome(
                request_id=request.request_id,
                tenant=request.tenant,
                status="failed",
                worker=self.wid,
                queue_wait_s=queue_wait,
                execute_s=execute_s,
                total_s=queue_wait + execute_s,
                key=entry.key,
                error=f"{type(exc).__name__}: {exc}",
            )
        outcome.execute_s = perf_counter() - started
        outcome.total_s = queue_wait + outcome.execute_s
        metrics.histogram("service_execute_s").observe(outcome.execute_s)
        metrics.histogram("service_total_s").observe(outcome.total_s)
        metrics.counter(
            "service_requests", tenant=request.tenant, outcome="served"
        ).inc()
        if outcome.cache_hit:
            metrics.counter(
                "service_cache_hits", tenant=request.tenant
            ).inc()
        self.served += 1
        return outcome

    def _execute(
        self, resolved: ResolvedRequest, queue_wait: float, *, traced: bool
    ) -> ServeOutcome:
        request = resolved.request
        problem = request.problem
        with self.instr.span(
            "serve",
            category="service",
            tenant=request.tenant,
            request_id=request.request_id,
            worker=self.wid,
            algorithm=resolved.algorithm,
            priority=request.priority,
        ) as span:
            span.annotate(queue_wait_s=queue_wait)
            if problem.faults:
                outcome = self._execute_faulted(resolved, traced=traced)
            else:
                outcome = self._execute_clean(resolved, traced=traced)
            span.annotate(
                cache_hit=outcome.cache_hit, resolved=outcome.resolved
            )
        outcome.queue_wait_s = queue_wait
        return outcome

    def _execute_clean(
        self, resolved: ResolvedRequest, *, traced: bool = False
    ) -> ServeOutcome:
        """Fault-free path: shared cache lookup, replay on a fresh machine."""
        from repro.topology import parse_topology

        # Parsed per request: a Topology's BFS distance cache is mutable,
        # so instances are never shared across worker threads.
        topo = parse_topology(resolved.topology, resolved.params.n)

        def compile_fn():
            if resolved.workload is not None:
                from repro.workloads import build_pipeline

                pipeline = build_pipeline(
                    resolved.workload,
                    resolved.params.n,
                    layout=resolved.request.problem.layout,
                    elements=resolved.request.problem.elements,
                )
                plan, _ = pipeline.compile(resolved.params)
                return plan
            from repro.transpose.planner import default_after_layout

            target = (
                resolved.after
                if resolved.after is not None
                else default_after_layout(resolved.before)
            )
            _, plan = capture_transpose(
                resolved.params,
                synthetic_matrix(resolved.before),
                target,
                algorithm=resolved.algorithm,
                topology=topo,
            )
            return plan

        resolve_span = (
            self.instr.span("plan-resolve", category="plan", key=resolved.key[:16])
            if traced
            else nullcontext()
        )
        with resolve_span as span:
            plan, hit = self.cache.get_or_compile(
                resolved.key, compile_fn, observer=self.instr
            )
            if traced:
                span.annotate(cache_hit=hit)
        network = CubeNetwork(resolved.params, topology=topo)
        self.instr.attach(network)
        if traced:
            exec_start = self.clock()
            with self.instr.span(
                "execute", category="execute", algorithm=plan.algorithm
            ):
                replay_plan(plan, network)
            network.stats.record_traced(self.clock() - exec_start)
        else:
            replay_plan(plan, network)
        return ServeOutcome(
            request_id=resolved.request.request_id,
            tenant=resolved.request.tenant,
            status="served",
            worker=self.wid,
            algorithm=plan.algorithm,
            cache_hit=hit,
            resolved="clean",
            modelled_time=network.stats.time,
            key=resolved.key,
            fingerprint=stats_fingerprint(network.stats),
        )

    def _execute_faulted(
        self, resolved: ResolvedRequest, *, traced: bool = False
    ) -> ServeOutcome:
        """Faulted path: per-request fault state, recovery before ladder."""
        from repro.machine.faults import FaultPlan
        from repro.plans.replay import replay_degraded
        from repro.topology import parse_topology

        problem = resolved.request.problem
        # Parsed fresh per request: no FaultPlan or Topology instance
        # (none of their mutable lookup/distance caches) is ever shared
        # between machines.
        topo = parse_topology(resolved.topology, problem.n)
        on_cube = topo.name == "cube"
        faults = FaultPlan.from_spec(
            problem.n,
            problem.faults,
            topology=None if on_cube else topo,
        )
        if resolved.workload is not None:
            return self._execute_workload_faulted(resolved, faults,
                                                  traced=traced)
        exec_span = (
            self.instr.span("execute", category="execute", faulted=True)
            if traced
            else nullcontext()
        )
        exec_start = self.clock() if traced else 0.0
        with exec_span:
            served = replay_degraded(
                resolved.params,
                resolved.before,
                resolved.after,
                faults=faults,
                algorithm=problem.algorithm,
                cache=self.cache,
                observer=self.instr,
                recovery=self.recovery if on_cube else None,
                topology=topo,
            )
        if traced:
            served.stats.record_traced(self.clock() - exec_start)
        rec = served.recovery
        resolved_how = (
            rec.resolved
            if rec is not None
            else ("ladder" if not served.replayed else "degraded")
            if served.degraded
            else "clean"
        )
        return ServeOutcome(
            request_id=resolved.request.request_id,
            tenant=resolved.request.tenant,
            status="served",
            worker=self.wid,
            algorithm=served.algorithm,
            cache_hit=served.cache_hit,
            resolved=resolved_how,
            modelled_time=served.stats.time,
            key=resolved.key,
            fingerprint=stats_fingerprint(served.stats),
            recovery=None if rec is None else rec.as_dict(),
        )

    def _execute_workload_faulted(
        self, resolved: ResolvedRequest, faults, *, traced: bool = False
    ) -> ServeOutcome:
        """Faulted pipeline path: checkpointed recovery, no ladder."""
        from repro.workloads import build_pipeline, serve_workload

        pipeline = build_pipeline(
            resolved.workload,
            resolved.params.n,
            layout=resolved.request.problem.layout,
            elements=resolved.request.problem.elements,
        )
        exec_span = (
            self.instr.span(
                "execute", category="execute", faulted=True,
                workload=pipeline.algorithm,
            )
            if traced
            else nullcontext()
        )
        exec_start = self.clock() if traced else 0.0
        with exec_span:
            served = serve_workload(
                pipeline,
                resolved.params,
                faults=faults,
                cache=self.cache,
                observer=self.instr,
                recovery=self.recovery,
            )
        if traced:
            served.stats.record_traced(self.clock() - exec_start)
        rec = served.recovery
        return ServeOutcome(
            request_id=resolved.request.request_id,
            tenant=resolved.request.tenant,
            status="served",
            worker=self.wid,
            algorithm=served.algorithm,
            cache_hit=served.cache_hit,
            resolved=served.resolved,
            modelled_time=served.stats.time,
            key=resolved.key,
            fingerprint=stats_fingerprint(served.stats),
            recovery=None if rec is None else rec.as_dict(),
        )
