"""The serving layer: multi-tenant transpose serving over the simulator.

Turns the one-shot pipeline (plan → execute → exit) into a long-lived
subsystem: a pool of worker threads, each owning a simulated cube
machine, drains a priority admission queue of tenant-attributed
transpose requests, sharing one thread-safe plan cache
(compile-once, serve-many) and shedding load past explicit high-water
marks.  See ``docs/service.md`` for the architecture and policies.
"""

from repro.service.loadgen import (
    LoadReport,
    LoadSpec,
    build_workload,
    deterministic_counters,
    run_loadgen,
    solo_fingerprint,
)
from repro.service.queue import AdmissionPolicy, AdmissionQueue, QueueEntry
from repro.service.request import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ServeOutcome,
    ServiceError,
    TransposeRequest,
    stats_fingerprint,
)
from repro.service.scheduler import (
    PendingResult,
    ResolvedRequest,
    Scheduler,
    resolve_request,
)
from repro.service.server import (
    ServerConfig,
    ServerReport,
    TransposeServer,
    percentile,
)
from repro.service.worker import Worker

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "LoadReport",
    "LoadSpec",
    "PendingResult",
    "QueueEntry",
    "ResolvedRequest",
    "Scheduler",
    "ServeOutcome",
    "ServerConfig",
    "ServerReport",
    "ServiceError",
    "TransposeRequest",
    "TransposeServer",
    "Worker",
    "build_workload",
    "deterministic_counters",
    "percentile",
    "resolve_request",
    "run_loadgen",
    "solo_fingerprint",
    "stats_fingerprint",
]
