"""The serving layer: multi-tenant transpose serving over the simulator.

Turns the one-shot pipeline (plan → execute → exit) into a long-lived
subsystem: a pool of worker threads, each owning a simulated cube
machine, drains a priority admission queue of tenant-attributed
transpose requests, sharing one thread-safe plan cache
(compile-once, serve-many) and shedding load past explicit high-water
marks.  See ``docs/service.md`` for the architecture and policies.

The serving layer is also self-healing (``docs/resilience.md``): a
:class:`~repro.service.resilience.Supervisor` replaces crashed or hung
workers and re-dispatches their in-flight requests under a bounded
retry budget, a per-key :class:`~repro.service.resilience.CircuitBreaker`
sheds known-bad work at admission, and a
:class:`~repro.service.resilience.BrownoutController` degrades service
gracefully under sustained overload.
"""

from repro.service.chaos import (
    ChaosReport,
    ServiceChaosSpec,
    run_service_chaos,
)
from repro.service.loadgen import (
    LoadReport,
    LoadSpec,
    build_workload,
    deterministic_counters,
    run_loadgen,
    solo_fingerprint,
)
from repro.service.queue import AdmissionPolicy, AdmissionQueue, QueueEntry
from repro.service.request import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ServeOutcome,
    ServiceError,
    TransposeRequest,
    stats_fingerprint,
)
from repro.service.resilience import (
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    PoisonRequestError,
    RetryBudget,
    RetryBudgetExhaustedError,
    ServerStoppedError,
    Supervisor,
    WorkerCrashed,
)
from repro.service.scheduler import (
    PendingResult,
    ResolvedRequest,
    Scheduler,
    resolve_request,
)
from repro.service.server import (
    ServerConfig,
    ServerReport,
    TransposeServer,
    percentile,
)
from repro.service.worker import Worker

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "AdmissionRejectedError",
    "BreakerPolicy",
    "BrownoutController",
    "BrownoutPolicy",
    "ChaosReport",
    "CircuitBreaker",
    "DeadlineExceededError",
    "LoadReport",
    "LoadSpec",
    "PendingResult",
    "PoisonRequestError",
    "QueueEntry",
    "ResolvedRequest",
    "RetryBudget",
    "RetryBudgetExhaustedError",
    "Scheduler",
    "ServeOutcome",
    "ServerConfig",
    "ServerReport",
    "ServerStoppedError",
    "ServiceChaosSpec",
    "ServiceError",
    "Supervisor",
    "TransposeRequest",
    "TransposeServer",
    "Worker",
    "WorkerCrashed",
    "build_workload",
    "deterministic_counters",
    "percentile",
    "resolve_request",
    "run_loadgen",
    "run_service_chaos",
    "solo_fingerprint",
    "stats_fingerprint",
]
