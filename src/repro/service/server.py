"""The transpose server: pool lifecycle, aggregation, and the SLO report.

:class:`TransposeServer` wires the pieces together: one thread-safe
:class:`~repro.plans.cache.PlanCache`, one
:class:`~repro.service.scheduler.Scheduler` (admission queue + plan-key
resolution), and ``workers`` serving threads, each with a private
instrumentation hub.  Submission is synchronous admission control —
shed requests raise :class:`~repro.service.request.AdmissionRejectedError`
before anything queues — and admitted requests return a
:class:`~repro.service.scheduler.PendingResult`.

Aggregation happens at report time, not on the hot path: worker
registries are folded into one
:class:`~repro.obs.metrics.MetricsRegistry` via ``merge`` (counters
add, histograms concatenate), and every outcome is kept so the report
can compute the serving SLOs — p50/p95/p99 latency, deadline-miss
rate, cache-hit rate, per-tenant admission statistics.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.ops import BurnRateTracker, MetricsExporter
from repro.obs.trace import TraceContext, merged_trace_document
from repro.plans.cache import PlanCache
from repro.service.queue import AdmissionPolicy
from repro.service.request import (
    AdmissionRejectedError,
    ServeOutcome,
    TransposeRequest,
)
from repro.service.scheduler import PendingResult, Scheduler, resolve_request
from repro.service.worker import Worker

__all__ = ["ServerConfig", "ServerReport", "TransposeServer", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) by nearest-rank on sorted values."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs; see :class:`~repro.service.queue.AdmissionPolicy`
    for the shedding gates."""

    workers: int = 2
    queue_capacity: int = 64
    tenant_pending: int | None = 16
    tenant_rate: float | None = None
    rate_burst: int | None = None
    max_batch: int = 4
    cache_capacity: int = 256
    cache_dir: str | None = None
    #: ``RecoveryPolicy.from_spec`` string for faulted requests
    #: (``None`` serves them through the restart ladder instead).
    recovery: str | None = "every=4"
    #: Arm request-scoped tracing: mint a TraceContext per submission
    #: and run worker hubs with the wall-clock axis and phase spans on.
    trace: bool = False
    #: Per-worker flight-recorder ring size (spans + events retained).
    flight_capacity: int = 256
    #: Serve Prometheus text on ``GET /metrics`` at this port while the
    #: server runs (``0`` binds an ephemeral port; ``None`` disables).
    metrics_port: int | None = None
    #: Availability objective the burn-rate tracker alerts against.
    slo_objective: float = 0.99
    #: Request-count window for the burn-rate tracker.
    slo_window: int = 100

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("server needs at least one worker")

    @classmethod
    def from_dict(cls, d: Mapping) -> "ServerConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown server config field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**d)

    def admission_policy(self) -> AdmissionPolicy:
        return AdmissionPolicy(
            capacity=self.queue_capacity,
            tenant_pending=self.tenant_pending,
            tenant_rate=self.tenant_rate,
            rate_burst=self.rate_burst,
        )


@dataclass
class ServerReport:
    """JSON-safe aggregate of one serving session."""

    outcomes: list[ServeOutcome]
    rejections: dict[str, dict[str, int]]  # tenant -> reason -> count
    cache: dict
    queue: dict
    workers: int
    wall_seconds: float
    #: Burn-rate tracker snapshot (None when the server ran without one).
    burn: dict | None = None
    #: Flight-recorder dumps from requests that ended badly.
    flight_reports: list = field(default_factory=list)

    def per_tenant(self) -> dict:
        tenants: dict[str, dict] = {}
        waits: dict[str, list[float]] = {}
        execs: dict[str, list[float]] = {}
        for tenant, reasons in self.rejections.items():
            t = tenants.setdefault(tenant, self._blank())
            t["rejected"] = sum(reasons.values())
            t["rejected_by_reason"] = dict(reasons)
        for o in self.outcomes:
            t = tenants.setdefault(o.tenant, self._blank())
            t["admitted"] += 1
            if o.status == "served":
                t["served"] += 1
                waits.setdefault(o.tenant, []).append(o.queue_wait_s)
                execs.setdefault(o.tenant, []).append(o.execute_s)
                if o.cache_hit:
                    t["cache_hits"] += 1
            elif o.status == "deadline_missed":
                t["deadline_missed"] += 1
            else:
                t["failed"] += 1
        for tenant, t in tenants.items():
            t["latency_s"] = {
                "queue_wait": self._pcts(waits.get(tenant, [])),
                "execute": self._pcts(execs.get(tenant, [])),
            }
        return dict(sorted(tenants.items()))

    @staticmethod
    def _blank() -> dict:
        return {
            "admitted": 0,
            "served": 0,
            "cache_hits": 0,
            "deadline_missed": 0,
            "failed": 0,
            "rejected": 0,
            "rejected_by_reason": {},
        }

    def slo(self) -> dict:
        """The serving-layer SLO summary (see docs/service.md)."""
        served = [o for o in self.outcomes if o.status == "served"]
        totals = [o.total_s for o in served]
        waits = [o.queue_wait_s for o in served]
        execs = [o.execute_s for o in served]
        admitted = len(self.outcomes)
        rejected = sum(
            sum(reasons.values()) for reasons in self.rejections.values()
        )
        missed = sum(
            1 for o in self.outcomes if o.status == "deadline_missed"
        )
        hits = sum(1 for o in served if o.cache_hit)
        doc = {
            "requests": admitted + rejected,
            "admitted": admitted,
            "rejected": rejected,
            "served": len(served),
            "failed": sum(1 for o in self.outcomes if o.status == "failed"),
            "deadline_missed": missed,
            "deadline_miss_rate": missed / admitted if admitted else 0.0,
            "cache_hit_rate": hits / len(served) if served else 0.0,
            "throughput_rps": (
                len(served) / self.wall_seconds if self.wall_seconds else 0.0
            ),
            "latency_s": {
                "total": self._pcts(totals),
                "queue_wait": self._pcts(waits),
                "execute": self._pcts(execs),
            },
        }
        if self.burn is not None:
            doc["burn"] = self.burn
        return doc

    @staticmethod
    def _pcts(values: list[float]) -> dict:
        return {
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
            "max": max(values) if values else 0.0,
        }

    def as_dict(self, *, with_outcomes: bool = False) -> dict:
        doc = {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "slo": self.slo(),
            "tenants": self.per_tenant(),
            "cache": self.cache,
            "queue": self.queue,
        }
        if self.flight_reports:
            doc["flight_reports"] = list(self.flight_reports)
        if with_outcomes:
            doc["outcomes"] = [o.as_dict() for o in self.outcomes]
        return doc


class TransposeServer:
    """A pool of simulated cube machines behind an admission queue."""

    def __init__(
        self, config: ServerConfig | None = None, *, clock=None
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.cache = PlanCache(
            capacity=self.config.cache_capacity, path=self.config.cache_dir
        )
        self.scheduler = Scheduler(
            self.config.admission_policy(),
            max_batch=self.config.max_batch,
            clock=clock,
        )
        recovery = None
        if self.config.recovery is not None:
            from repro.recovery import RecoveryPolicy

            recovery = RecoveryPolicy.from_spec(self.config.recovery)
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._outstanding = 0
        self._outcomes: list[ServeOutcome] = []
        self._rejections: dict[str, dict[str, int]] = {}
        self._started_at: float | None = None
        self._wall_seconds = 0.0
        # The clock the admission queue timestamps entries with; trace
        # resolve times must be measured on the same one, or backdated
        # wall intervals would mix time bases.
        import time as _time

        self._clock = clock if clock is not None else _time.monotonic
        self._trace_seq = itertools.count()
        self.burn = BurnRateTracker(
            self.config.slo_objective, window=self.config.slo_window
        )
        self.exporter = (
            MetricsExporter(self.metrics, port=self.config.metrics_port)
            if self.config.metrics_port is not None
            else None
        )
        worker_kwargs = {} if clock is None else {"clock": clock}
        self.workers = [
            Worker(
                wid,
                self.scheduler,
                self.cache,
                recovery=recovery,
                on_outcome=self._record,
                trace=self.config.trace,
                flight_capacity=self.config.flight_capacity,
                **worker_kwargs,
            )
            for wid in range(self.config.workers)
        ]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "TransposeServer":
        self._started_at = perf_counter()
        if self.exporter is not None:
            self.exporter.start()
        for worker in self.workers:
            worker.start()
        return self

    def stop(self, *, wait: bool = True) -> None:
        """Close admission; optionally wait for queued work to finish."""
        if wait:
            self.drain()
        self.scheduler.close()
        for worker in self.workers:
            if worker.is_alive():
                worker.join()
        if self.exporter is not None:
            self.exporter.stop()
        if self._started_at is not None:
            self._wall_seconds = perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "TransposeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    def submit(
        self, request: TransposeRequest, now: float | None = None
    ) -> PendingResult:
        """Resolve + admit one request (both synchronous).

        Raises :class:`ValueError` on malformed problems and
        :class:`AdmissionRejectedError` when a shedding gate fires; the
        rejection is counted per tenant and reason either way the
        caller handles it.
        """
        if self.config.trace:
            resolve_started = self._clock()
            resolved = resolve_request(request)
            # Trace ids come off a plain counter, not a UUID: the same
            # workload replays to the same ids, which is what lets the
            # trace tests assert exact shapes.
            context = TraceContext(
                trace_id=f"req-{next(self._trace_seq):06d}",
                request_id=request.request_id,
                tenant=request.tenant,
                priority=request.priority,
            )
            resolved = replace(
                resolved,
                trace=context,
                resolve_s=max(0.0, self._clock() - resolve_started),
            )
        else:
            resolved = resolve_request(request)
        with self._lock:
            try:
                pending = self.scheduler.submit(resolved, now)
            except AdmissionRejectedError as exc:
                tenant = self._rejections.setdefault(request.tenant, {})
                tenant[exc.reason] = tenant.get(exc.reason, 0) + 1
                raise
            self._outstanding += 1
        return pending

    def _record(self, outcome: ServeOutcome) -> None:
        self.burn.record_outcome(outcome)
        with self._lock:
            self._outcomes.append(outcome)
            self._outstanding -= 1
            if self._outstanding == 0:
                self._drained.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has an outcome."""
        with self._lock:
            return self._drained.wait_for(
                lambda: self._outstanding == 0, timeout
            )

    # -- reporting -----------------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """One registry folding every worker's instruments together."""
        merged = MetricsRegistry()
        for worker in self.workers:
            merged.merge(worker.instr.metrics)
        return merged

    def report(self) -> ServerReport:
        wall = self._wall_seconds
        if self._started_at is not None:
            wall = perf_counter() - self._started_at
        with self._lock:
            return ServerReport(
                outcomes=list(self._outcomes),
                rejections={
                    t: dict(r) for t, r in self._rejections.items()
                },
                cache=self.cache.counters(),
                queue=self.scheduler.queue.snapshot(),
                workers=len(self.workers),
                wall_seconds=wall,
                burn=self.burn.snapshot(),
                flight_reports=[
                    dump
                    for worker in self.workers
                    for dump in worker.flight_reports
                ],
            )

    def trace_document(self) -> dict:
        """The merged dual-axis Chrome/Perfetto trace over all workers.

        Meaningful after :meth:`stop` (or at least a :meth:`drain`):
        worker hubs are single-threaded, so their span lists are read
        here, not on the hot path.  One track per worker on each axis.
        """
        return merged_trace_document(
            (f"worker-{w.wid}", w.instr.spans, w.instr.events)
            for w in self.workers
        )
