"""The transpose server: pool lifecycle, aggregation, and the SLO report.

:class:`TransposeServer` wires the pieces together: one thread-safe
:class:`~repro.plans.cache.PlanCache`, one
:class:`~repro.service.scheduler.Scheduler` (admission queue + plan-key
resolution), and ``workers`` serving threads, each with a private
instrumentation hub.  Submission is synchronous admission control —
shed requests raise :class:`~repro.service.request.AdmissionRejectedError`
before anything queues — and admitted requests return a
:class:`~repro.service.scheduler.PendingResult`.

Aggregation happens at report time, not on the hot path: worker
registries are folded into one
:class:`~repro.obs.metrics.MetricsRegistry` via ``merge`` (counters
add, histograms concatenate), and every outcome is kept so the report
can compute the serving SLOs — p50/p95/p99 latency, deadline-miss
rate, cache-hit rate, per-tenant admission statistics.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Mapping

from repro.obs.instrumentation import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.ops import BurnRateTracker, MetricsExporter
from repro.obs.trace import TraceContext, merged_trace_document
from repro.plans.cache import PlanCache
from repro.service.queue import AdmissionPolicy
from repro.service.request import (
    AdmissionRejectedError,
    ServeOutcome,
    TransposeRequest,
)
from repro.service.resilience import (
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    RetryBudget,
    ServerStoppedError,
    Supervisor,
)
from repro.service.scheduler import PendingResult, Scheduler, resolve_request
from repro.service.worker import Worker

__all__ = ["ServerConfig", "ServerReport", "TransposeServer", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) by nearest-rank on sorted values."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs; see :class:`~repro.service.queue.AdmissionPolicy`
    for the shedding gates."""

    workers: int = 2
    queue_capacity: int = 64
    tenant_pending: int | None = 16
    tenant_rate: float | None = None
    rate_burst: int | None = None
    max_batch: int = 4
    cache_capacity: int = 256
    cache_dir: str | None = None
    #: ``RecoveryPolicy.from_spec`` string for faulted requests
    #: (``None`` serves them through the restart ladder instead).
    recovery: str | None = "every=4"
    #: Arm request-scoped tracing: mint a TraceContext per submission
    #: and run worker hubs with the wall-clock axis and phase spans on.
    trace: bool = False
    #: Per-worker flight-recorder ring size (spans + events retained).
    flight_capacity: int = 256
    #: Serve Prometheus text on ``GET /metrics`` at this port while the
    #: server runs (``0`` binds an ephemeral port; ``None`` disables).
    metrics_port: int | None = None
    #: Availability objective the burn-rate tracker alerts against.
    slo_objective: float = 0.99
    #: Request-count window for the burn-rate tracker.
    slo_window: int = 100
    #: Re-dispatch attempts per request after a worker death (0 turns
    #: retries off; the victim request fails on first kill).
    retries: int = 2
    #: Base/backoff-jitter/seed for the retry schedule
    #: (:class:`~repro.service.resilience.RetryBudget`).
    retry_backoff: float = 0.05
    retry_jitter: float = 0.5
    retry_seed: int = 0
    #: Per-request watchdog: a worker executing one request longer than
    #: this many wall seconds is declared hung (``None`` disables).
    watchdog: float | None = None
    #: Run the supervisor thread.  ``None`` = auto: on when retries or
    #: the watchdog could ever act (``retries > 0`` or ``watchdog``).
    supervise: bool | None = None
    #: Consecutive worker kills before a request is quarantined.
    poison_threshold: int = 2
    #: ``BreakerPolicy.from_spec`` string (``None`` = no breaker).
    breaker: str | None = None
    #: ``BrownoutPolicy.from_spec`` string (``None`` = no brownout).
    brownout: str | None = None
    #: Supervisor scan period in seconds.
    supervisor_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("server needs at least one worker")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.watchdog is not None and self.watchdog <= 0:
            raise ValueError("watchdog must be positive seconds")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be at least 1")
        # Parse the policy specs now so a typo is an input error at
        # config time, not a traceback when the server is built.
        if self.breaker is not None:
            BreakerPolicy.from_spec(self.breaker)
        if self.brownout is not None:
            BrownoutPolicy.from_spec(self.brownout)

    @property
    def supervised(self) -> bool:
        if self.supervise is not None:
            return self.supervise
        return self.retries > 0 or self.watchdog is not None

    @classmethod
    def from_dict(cls, d: Mapping) -> "ServerConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown server config field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**d)

    def admission_policy(self) -> AdmissionPolicy:
        return AdmissionPolicy(
            capacity=self.queue_capacity,
            tenant_pending=self.tenant_pending,
            tenant_rate=self.tenant_rate,
            rate_burst=self.rate_burst,
        )


@dataclass
class ServerReport:
    """JSON-safe aggregate of one serving session."""

    outcomes: list[ServeOutcome]
    rejections: dict[str, dict[str, int]]  # tenant -> reason -> count
    cache: dict
    queue: dict
    workers: int
    wall_seconds: float
    #: Burn-rate tracker snapshot (None when the server ran without one).
    burn: dict | None = None
    #: Flight-recorder dumps from requests that ended badly.
    flight_reports: list = field(default_factory=list)
    #: Supervisor / breaker / brownout snapshots (None when the server
    #: ran with every resilience feature off).
    resilience: dict | None = None

    def per_tenant(self) -> dict:
        tenants: dict[str, dict] = {}
        waits: dict[str, list[float]] = {}
        execs: dict[str, list[float]] = {}
        for tenant, reasons in self.rejections.items():
            t = tenants.setdefault(tenant, self._blank())
            t["rejected"] = sum(reasons.values())
            t["rejected_by_reason"] = dict(reasons)
        for o in self.outcomes:
            t = tenants.setdefault(o.tenant, self._blank())
            t["admitted"] += 1
            if o.status == "served":
                t["served"] += 1
                waits.setdefault(o.tenant, []).append(o.queue_wait_s)
                execs.setdefault(o.tenant, []).append(o.execute_s)
                if o.cache_hit:
                    t["cache_hits"] += 1
            elif o.status == "deadline_missed":
                t["deadline_missed"] += 1
            else:
                t["failed"] += 1
        for tenant, t in tenants.items():
            t["latency_s"] = {
                "queue_wait": self._pcts(waits.get(tenant, [])),
                "execute": self._pcts(execs.get(tenant, [])),
            }
        return dict(sorted(tenants.items()))

    @staticmethod
    def _blank() -> dict:
        return {
            "admitted": 0,
            "served": 0,
            "cache_hits": 0,
            "deadline_missed": 0,
            "failed": 0,
            "rejected": 0,
            "rejected_by_reason": {},
        }

    def slo(self) -> dict:
        """The serving-layer SLO summary (see docs/service.md)."""
        served = [o for o in self.outcomes if o.status == "served"]
        totals = [o.total_s for o in served]
        waits = [o.queue_wait_s for o in served]
        execs = [o.execute_s for o in served]
        admitted = len(self.outcomes)
        rejected = sum(
            sum(reasons.values()) for reasons in self.rejections.values()
        )
        missed = sum(
            1 for o in self.outcomes if o.status == "deadline_missed"
        )
        hits = sum(1 for o in served if o.cache_hit)
        doc = {
            "requests": admitted + rejected,
            "admitted": admitted,
            "rejected": rejected,
            "served": len(served),
            "failed": sum(1 for o in self.outcomes if o.status == "failed"),
            "deadline_missed": missed,
            "deadline_miss_rate": missed / admitted if admitted else 0.0,
            "cache_hit_rate": hits / len(served) if served else 0.0,
            "throughput_rps": (
                len(served) / self.wall_seconds if self.wall_seconds else 0.0
            ),
            "latency_s": {
                "total": self._pcts(totals),
                "queue_wait": self._pcts(waits),
                "execute": self._pcts(execs),
            },
        }
        # Terminal statuses the resilience layer introduces, zero-
        # suppressed so pre-existing pinned report shapes stay intact.
        for status in ("poisoned", "stopped"):
            count = sum(1 for o in self.outcomes if o.status == status)
            if count:
                doc[status] = count
        retried = sum(1 for o in self.outcomes if o.attempts > 1)
        if retried:
            doc["retried"] = retried
        if self.burn is not None:
            doc["burn"] = self.burn
        return doc

    @staticmethod
    def _pcts(values: list[float]) -> dict:
        return {
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
            "max": max(values) if values else 0.0,
        }

    def as_dict(self, *, with_outcomes: bool = False) -> dict:
        doc = {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "slo": self.slo(),
            "tenants": self.per_tenant(),
            "cache": self.cache,
            "queue": self.queue,
            "resilience": self.resilience,
        }
        if self.flight_reports:
            doc["flight_reports"] = list(self.flight_reports)
        if with_outcomes:
            doc["outcomes"] = [o.as_dict() for o in self.outcomes]
        return doc


class TransposeServer:
    """A pool of simulated cube machines behind an admission queue."""

    def __init__(
        self, config: ServerConfig | None = None, *, clock=None
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.cache = PlanCache(
            capacity=self.config.cache_capacity, path=self.config.cache_dir
        )
        self.scheduler = Scheduler(
            self.config.admission_policy(),
            max_batch=self.config.max_batch,
            clock=clock,
        )
        recovery = None
        if self.config.recovery is not None:
            from repro.recovery import RecoveryPolicy

            recovery = RecoveryPolicy.from_spec(self.config.recovery)
        self._recovery = recovery
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._outstanding = 0
        self._outcomes: list[ServeOutcome] = []
        self._rejections: dict[str, dict[str, int]] = {}
        self._started_at: float | None = None
        self._wall_seconds = 0.0
        self._running = False
        # The clock the admission queue timestamps entries with; trace
        # resolve times must be measured on the same one, or backdated
        # wall intervals would mix time bases.
        import time as _time

        self._clock = clock if clock is not None else _time.monotonic
        self._trace_seq = itertools.count()
        self.burn = BurnRateTracker(
            self.config.slo_objective, window=self.config.slo_window
        )
        self.exporter = (
            MetricsExporter(self.metrics, port=self.config.metrics_port)
            if self.config.metrics_port is not None
            else None
        )
        #: Server-level telemetry hub: supervisor/breaker/brownout
        #: counters and events live here, folded into :meth:`metrics`
        #: and exposed as a ``supervisor`` trace track.
        self.instr = Instrumentation()
        #: Chaos injection hook handed to every worker (including
        #: supervisor replacements); set before :meth:`start`.
        self.chaos = None
        self._worker_clock = clock
        self._pool_lock = threading.Lock()
        self._wid = itertools.count(self.config.workers)
        self._base_max_batch = self.config.max_batch
        self.retired: list[Worker] = []
        self.breaker = (
            CircuitBreaker(
                BreakerPolicy.from_spec(self.config.breaker),
                clock=self._clock,
                instr=self.instr,
            )
            if self.config.breaker is not None
            else None
        )
        self.brownout = (
            BrownoutController(
                BrownoutPolicy.from_spec(self.config.brownout),
                on_change=self._apply_brownout,
                instr=self.instr,
            )
            if self.config.brownout is not None
            else None
        )
        self.supervisor = (
            Supervisor(
                self,
                retry=RetryBudget(
                    attempts=self.config.retries,
                    backoff=self.config.retry_backoff,
                    jitter=self.config.retry_jitter,
                    seed=self.config.retry_seed,
                ),
                watchdog=self.config.watchdog,
                poison_threshold=self.config.poison_threshold,
                interval=self.config.supervisor_interval,
                clock=self._clock,
            )
            if self.config.supervised
            else None
        )
        self.workers = [
            self._make_worker(wid) for wid in range(self.config.workers)
        ]

    def _make_worker(self, wid: int) -> Worker:
        kwargs = (
            {} if self._worker_clock is None else {"clock": self._worker_clock}
        )
        tracing = self.config.trace
        if self.brownout is not None and self.brownout.level >= 3:
            tracing = False  # the disable-tracing rung is in force
        return Worker(
            wid,
            self.scheduler,
            self.cache,
            recovery=self._recovery,
            on_outcome=self._record,
            on_death=(
                self.supervisor.notify_death
                if self.supervisor is not None
                else None
            ),
            chaos=self.chaos,
            trace=tracing,
            flight_capacity=self.config.flight_capacity,
            **kwargs,
        )

    def _spawn_worker(self) -> Worker | None:
        """Supervisor-side: add a replacement worker to the live pool."""
        if not self._running or self.scheduler.queue.closed:
            return None
        worker = self._make_worker(next(self._wid))
        with self._pool_lock:
            self.workers.append(worker)
        worker.start()
        return worker

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "TransposeServer":
        self._started_at = perf_counter()
        self._running = True
        if self.exporter is not None:
            self.exporter.start()
        with self._pool_lock:
            pool = list(self.workers)
        for worker in pool:
            worker.start()
        if self.supervisor is not None:
            self.supervisor.start()
        return self

    def stop(self, *, wait: bool = True) -> None:
        """Close admission; optionally wait for queued work to finish.

        Whatever happens — drain timeout, dead pool, work still in
        flight with ``wait=False`` — every outstanding
        :class:`PendingResult` is resolved with a terminal
        ``"stopped"`` outcome before this returns, so no client blocks
        forever on a request the pool will never serve.
        """
        if wait:
            self.drain()
        self._running = False
        self.scheduler.close()
        deadline = perf_counter() + 30.0
        while True:
            with self._pool_lock:
                pool = list(self.workers)
            alive = [
                w for w in pool if w.is_alive() and not w.abandoned
            ]
            if not alive or perf_counter() >= deadline:
                break
            for worker in alive:
                worker.join(timeout=max(0.01, deadline - perf_counter()))
        if self.supervisor is not None:
            self.supervisor.stop()
        # stop(wait=False), drain timeouts, and retries scheduled past
        # shutdown all leave resolved-less slots behind; abort them.
        self._abort_outstanding("the server stopped")
        if self.exporter is not None:
            self.exporter.stop()
        if self._started_at is not None:
            self._wall_seconds = perf_counter() - self._started_at
            self._started_at = None

    def set_chaos(self, hook) -> None:
        """Install a chaos hook on the pool (and future replacements)."""
        self.chaos = hook
        with self._pool_lock:
            for worker in self.workers:
                worker.chaos = hook

    def __enter__(self) -> "TransposeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    def submit(
        self, request: TransposeRequest, now: float | None = None
    ) -> PendingResult:
        """Resolve + admit one request (both synchronous).

        Raises :class:`ValueError` on malformed problems and
        :class:`AdmissionRejectedError` when a shedding gate fires; the
        rejection is counted per tenant and reason either way the
        caller handles it.
        """
        if self.config.trace:
            resolve_started = self._clock()
            resolved = resolve_request(request)
            # Trace ids come off a plain counter, not a UUID: the same
            # workload replays to the same ids, which is what lets the
            # trace tests assert exact shapes.
            context = TraceContext(
                trace_id=f"req-{next(self._trace_seq):06d}",
                request_id=request.request_id,
                tenant=request.tenant,
                priority=request.priority,
            )
            resolved = replace(
                resolved,
                trace=context,
                resolve_s=max(0.0, self._clock() - resolve_started),
            )
        else:
            resolved = resolve_request(request)
        with self._lock:
            try:
                if self.brownout is not None and not self.brownout.admits(
                    request.priority
                ):
                    raise AdmissionRejectedError(
                        "brownout",
                        request.tenant,
                        f"degradation level {self.brownout.level}",
                    )
                if self.breaker is not None and not self.breaker.allow(
                    resolved.key, request.tenant
                ):
                    raise AdmissionRejectedError(
                        "breaker_open",
                        request.tenant,
                        f"circuit open for {self.breaker.key_for(resolved.key, request.tenant)[:16]!r}",
                    )
                pending = self.scheduler.submit(resolved, now)
            except AdmissionRejectedError as exc:
                tenant = self._rejections.setdefault(request.tenant, {})
                tenant[exc.reason] = tenant.get(exc.reason, 0) + 1
                raise
            self._outstanding += 1
        return pending

    def _record(self, outcome: ServeOutcome) -> None:
        self.burn.record_outcome(outcome)
        if self.breaker is not None and outcome.status != "stopped":
            # "stopped" says nothing about the work itself; everything
            # else feeds the key's failure window.
            self.breaker.record(
                outcome.key,
                outcome.tenant,
                outcome.status not in ("failed", "poisoned"),
            )
        if self.brownout is not None:
            self.brownout.observe(outcome)
        with self._lock:
            self._outcomes.append(outcome)
            self._outstanding -= 1
            if self._outstanding == 0:
                self._drained.notify_all()

    def _apply_brownout(self, level: int) -> None:
        """Make the ladder's rungs real on the scheduler and pool."""
        policy = self.brownout.policy
        self.scheduler.max_batch = self._base_max_batch * (
            policy.widen if level >= 2 else 1
        )
        tracing = self.config.trace and level < 3
        with self._pool_lock:
            for worker in self.workers:
                worker.tracing = tracing

    def _pool_dead(self) -> bool:
        """No started worker can make progress and nobody will fix it."""
        if self.supervisor is not None and self.supervisor.is_alive():
            return False
        with self._pool_lock:
            pool = list(self.workers)
        started = [w for w in pool if w.ident is not None]
        return bool(started) and all(
            w.finished or not w.is_alive() for w in started
        ) and len(started) == len(pool)

    def _abort_outstanding(self, reason: str) -> int:
        """Resolve every outstanding slot with a ``"stopped"`` outcome."""

        def make(entry) -> ServeOutcome:
            request = entry.request
            error = ServerStoppedError(
                request.request_id, request.tenant, reason
            )
            return ServeOutcome(
                request_id=request.request_id,
                tenant=request.tenant,
                status="stopped",
                key=entry.key,
                attempts=entry.attempt + 1,
                error=f"{type(error).__name__}: {error}",
            )

        aborted = self.scheduler.abort_all(make)
        for outcome in aborted:
            self._record(outcome)
        if aborted:
            self.instr.event(
                "abort-outstanding", "service",
                count=len(aborted), reason=reason,
            )
        return len(aborted)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has a terminal outcome.

        On timeout — or when the whole pool is dead with nothing left
        to revive it (resilience off) — the remaining outstanding
        requests are resolved with typed ``"stopped"`` outcomes
        (:class:`~repro.service.resilience.ServerStoppedError`) and
        ``False`` is returned: a failed drain never leaves a
        :meth:`PendingResult.result` blocked forever.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        while True:
            with self._lock:
                if self._outstanding == 0:
                    return True
                remaining = (
                    None if deadline is None else deadline - perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    break
                wait = 0.05 if remaining is None else min(0.05, remaining)
                self._drained.wait(wait)
                if self._outstanding == 0:
                    return True
            if self._pool_dead():
                self._abort_outstanding(
                    "every worker died and supervision is off"
                )
                return False
        self._abort_outstanding(f"drain timed out after {timeout:g}s")
        return False

    # -- reporting -----------------------------------------------------------

    def _all_workers(self) -> list[Worker]:
        """Live pool plus supervisor-retired workers, in wid order."""
        with self._pool_lock:
            return sorted(
                [*self.workers, *self.retired], key=lambda w: w.wid
            )

    def metrics(self) -> MetricsRegistry:
        """One registry folding every worker's instruments together.

        Retired (crashed/hung) workers keep contributing the counters
        they earned before dying, and the server's own hub contributes
        the supervisor/breaker/brownout instruments.
        """
        merged = MetricsRegistry()
        for worker in self._all_workers():
            merged.merge(worker.instr.metrics)
        merged.merge(self.instr.metrics)
        return merged

    def resilience_snapshot(self) -> dict | None:
        """Supervisor/breaker/brownout state (None with everything off)."""
        if (
            self.supervisor is None
            and self.breaker is None
            and self.brownout is None
        ):
            return None
        doc: dict = {}
        if self.supervisor is not None:
            doc["supervisor"] = self.supervisor.snapshot()
        if self.breaker is not None:
            doc["breaker"] = self.breaker.snapshot()
        if self.brownout is not None:
            doc["brownout"] = self.brownout.snapshot()
        return doc

    def report(self) -> ServerReport:
        wall = self._wall_seconds
        if self._started_at is not None:
            wall = perf_counter() - self._started_at
        everyone = self._all_workers()
        with self._lock:
            return ServerReport(
                outcomes=list(self._outcomes),
                rejections={
                    t: dict(r) for t, r in self._rejections.items()
                },
                cache=self.cache.counters(),
                queue=self.scheduler.queue.snapshot(),
                workers=len(everyone),
                wall_seconds=wall,
                burn=self.burn.snapshot(),
                flight_reports=[
                    dump
                    for worker in everyone
                    for dump in worker.flight_reports
                ],
                resilience=self.resilience_snapshot(),
            )

    def trace_document(self) -> dict:
        """The merged dual-axis Chrome/Perfetto trace over all workers.

        Meaningful after :meth:`stop` (or at least a :meth:`drain`):
        worker hubs are single-threaded, so their span lists are read
        here, not on the hot path.  One track per worker on each axis
        (retired workers included), plus a ``supervisor`` track for
        the server hub's events when it recorded any.
        """
        tracks = [
            (f"worker-{w.wid}", w.instr.spans, w.instr.events)
            for w in self._all_workers()
        ]
        if self.instr.spans or self.instr.events:
            tracks.append(("supervisor", self.instr.spans, self.instr.events))
        return merged_trace_document(tracks)
