"""The admission queue: priority + EDF ordering, backpressure, shedding.

Admission control happens at :meth:`AdmissionQueue.submit`, *before*
anything is enqueued, so shed load costs one lock acquisition and no
planner work.  Three independent gates apply, checked in this order:

1. **queue-depth backpressure** — the global ``capacity`` high-water
   mark (``queue_full``);
2. **per-tenant pending quota** — at most ``tenant_pending`` queued
   requests per tenant, so one chatty tenant cannot occupy the whole
   queue (``tenant_quota``);
3. **per-tenant rate limit** — a token bucket refilled at
   ``tenant_rate`` requests/second up to ``rate_burst`` tokens
   (``rate_limited``).  The bucket consults an injected ``now`` so
   tests and deterministic baseline runs can drive it on a logical
   clock (the default is :func:`time.monotonic`).

Dequeue order is earliest-deadline-first within priority: the heap key
is ``(priority, absolute deadline, submission sequence)``, so urgent
tenants overtake bulk traffic and, within a class, the request closest
to missing its deadline runs first, with FIFO as the tiebreak.

:meth:`pop_batch` implements the scheduler's compatible-request
coalescing: entries sharing the head entry's plan key are handed to one
worker back-to-back (lazy deletion keeps the heap honest), so a compile
miss is immediately amortised across every queued request for the same
schedule.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.service.request import AdmissionRejectedError, TransposeRequest

__all__ = ["AdmissionPolicy", "AdmissionQueue", "QueueEntry"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The shedding knobs; ``None`` disables a gate."""

    capacity: int = 64
    tenant_pending: int | None = 16
    tenant_rate: float | None = None
    rate_burst: int | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if self.tenant_pending is not None and self.tenant_pending < 1:
            raise ValueError("tenant_pending must be at least 1")
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ValueError("tenant_rate must be positive")

    @property
    def burst(self) -> float:
        if self.rate_burst is not None:
            return float(self.rate_burst)
        return max(1.0, float(self.tenant_rate or 1.0))


@dataclass
class QueueEntry:
    """One admitted request plus its scheduling state."""

    request: TransposeRequest
    #: Content address of the plan this request resolves to — the
    #: batching compatibility key.
    key: str
    seq: int
    submitted: float
    #: Absolute wall-clock deadline (``submitted + request.deadline``).
    deadline_at: float | None = None
    #: Opaque scheduler payload (the resolved request) riding along.
    payload: object = field(default=None, compare=False)
    taken: bool = field(default=False, compare=False)
    #: Supervisor re-dispatches this entry has consumed (0 on first
    #: admission; bumped by the retry budget, never by admission).
    attempt: int = field(default=0, compare=False)

    def sort_key(self) -> tuple:
        deadline = self.deadline_at if self.deadline_at is not None else float("inf")
        return (self.request.priority, deadline, self.seq)


class AdmissionQueue:
    """Thread-safe bounded priority queue with per-tenant accounting."""

    def __init__(
        self, policy: AdmissionPolicy | None = None, *, clock=time.monotonic
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.clock = clock
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._heap: list[tuple[tuple, QueueEntry]] = []
        self._by_key: dict[str, list[QueueEntry]] = {}
        self._pending: dict[str, int] = {}
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant -> (tokens, at)
        self._seq = itertools.count()
        self._depth = 0
        self._closed = False

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        request: TransposeRequest,
        key: str,
        now: float | None = None,
        payload: object = None,
    ) -> QueueEntry:
        """Admit ``request`` or raise :class:`AdmissionRejectedError`."""
        policy = self.policy
        with self._lock:
            if self._closed:
                raise AdmissionRejectedError(
                    "closed", request.tenant, "the server is shutting down"
                )
            if now is None:
                now = self.clock()
            if self._depth >= policy.capacity:
                raise AdmissionRejectedError(
                    "queue_full",
                    request.tenant,
                    f"depth {self._depth} at capacity {policy.capacity}",
                )
            pending = self._pending.get(request.tenant, 0)
            if (
                policy.tenant_pending is not None
                and pending >= policy.tenant_pending
            ):
                raise AdmissionRejectedError(
                    "tenant_quota",
                    request.tenant,
                    f"{pending} pending at quota {policy.tenant_pending}",
                )
            if policy.tenant_rate is not None and not self._take_token(
                request.tenant, now
            ):
                raise AdmissionRejectedError(
                    "rate_limited",
                    request.tenant,
                    f"over {policy.tenant_rate:g} request(s)/s",
                )
            entry = QueueEntry(
                request=request,
                key=key,
                seq=next(self._seq),
                submitted=now,
                deadline_at=(
                    None
                    if request.deadline is None
                    else now + request.deadline
                ),
                payload=payload,
            )
            heapq.heappush(self._heap, (entry.sort_key(), entry))
            self._by_key.setdefault(key, []).append(entry)
            self._pending[request.tenant] = pending + 1
            self._depth += 1
            self._nonempty.notify()
            return entry

    def _take_token(self, tenant: str, now: float) -> bool:
        burst = self.policy.burst
        tokens, at = self._buckets.get(tenant, (burst, now))
        tokens = min(burst, tokens + (now - at) * self.policy.tenant_rate)
        if tokens < 1.0:
            self._buckets[tenant] = (tokens, now)
            return False
        self._buckets[tenant] = (tokens - 1.0, now)
        return True

    def requeue(self, entry: QueueEntry) -> QueueEntry:
        """Put a previously popped entry back for another attempt.

        Supervisor-side: bypasses every admission gate (the request was
        already admitted once and the client holds its pending slot)
        and works even after :meth:`close`, so retries scheduled before
        shutdown can still drain.  The entry keeps its original
        ``submitted`` timestamp and absolute deadline — a re-dispatch
        does not reset the request's latency or its deadline budget —
        but takes a fresh ``seq`` so heap ordering stays total.
        """
        with self._lock:
            entry.taken = False
            entry.seq = next(self._seq)
            heapq.heappush(self._heap, (entry.sort_key(), entry))
            self._by_key.setdefault(entry.key, []).append(entry)
            tenant = entry.request.tenant
            self._pending[tenant] = self._pending.get(tenant, 0) + 1
            self._depth += 1
            self._nonempty.notify()
            return entry

    # -- dequeue -------------------------------------------------------------

    def pop_batch(
        self, max_batch: int = 1, timeout: float | None = None
    ) -> list[QueueEntry]:
        """Up to ``max_batch`` entries sharing one plan key; ``[]`` on close.

        Blocks until at least one entry is available (or the queue is
        closed and drained).  The head follows the priority/EDF order;
        the rest of the batch is pulled from the head's key bucket in
        FIFO order, so a batch replays one cached plan repeatedly.
        """
        with self._lock:
            while True:
                head = self._pop_head_locked()
                if head is not None:
                    break
                if self._closed:
                    return []
                if not self._nonempty.wait(timeout):
                    return []
            batch = [head]
            bucket = self._by_key.get(head.key, [])
            while bucket and len(batch) < max_batch:
                extra = bucket.pop(0)
                extra.taken = True
                self._account_out(extra)
                batch.append(extra)
            if not bucket:
                self._by_key.pop(head.key, None)
            return batch

    def _pop_head_locked(self) -> QueueEntry | None:
        while self._heap:
            _, entry = heapq.heappop(self._heap)
            if entry.taken:
                continue  # already served as part of an earlier batch
            entry.taken = True
            bucket = self._by_key.get(entry.key)
            if bucket is not None:
                try:
                    bucket.remove(entry)
                except ValueError:
                    pass
                if not bucket:
                    self._by_key.pop(entry.key, None)
            self._account_out(entry)
            return entry
        return None

    def _account_out(self, entry: QueueEntry) -> None:
        tenant = entry.request.tenant
        left = self._pending.get(tenant, 1) - 1
        if left:
            self._pending[tenant] = left
        else:
            self._pending.pop(tenant, None)
        self._depth -= 1

    # -- lifecycle / introspection -------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake every waiting worker."""
        with self._lock:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return self._depth

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": self._depth,
                "capacity": self.policy.capacity,
                "closed": self._closed,
                "pending_by_tenant": dict(self._pending),
            }
