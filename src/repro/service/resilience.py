"""Self-healing machinery for the serving layer.

The serving stack up to PR 8 assumed a well-behaved pool: a worker
thread that died (or wedged) silently shrank the pool forever, every
admitted request executed at most once, and one poison request could
walk the pool killing workers one by one.  This module adds the four
control loops that make :class:`~repro.service.server.TransposeServer`
survive its own machinery (``docs/resilience.md``):

* :class:`Supervisor` — a monitor thread on an injectable clock that
  watches per-worker heartbeats, detects **crashed** workers (the
  thread died, or marked itself dead on an unhandled exception) and
  **hung** workers (a per-request watchdog deadline), replaces the
  victim with a fresh worker, and re-dispatches its in-flight
  requests;
* :class:`RetryBudget` — bounded re-dispatch attempts per request with
  exponential backoff and deterministic seeded jitter.  Re-dispatch is
  idempotent end to end: a request's
  :class:`~repro.service.scheduler.PendingResult` resolves exactly
  once even when an abandoned attempt limps home late;
* :class:`CircuitBreaker` — a per-plan-key (or per-tenant)
  closed → open → half-open breaker, failure-rate windowed, shedding
  known-bad work at admission before it burns a worker.  Requests that
  kill ``poison_threshold`` consecutive workers are quarantined with a
  typed :class:`PoisonRequestError` instead of being retried forever;
* :class:`BrownoutController` — turns sustained queue-wait overload
  (a count-windowed :class:`~repro.obs.ops.BurnRateTracker` signal)
  into steps up a declared degradation ladder — shed lowest priority,
  widen batch coalescing, disable wall-clock tracing, reject at
  admission — and steps back down with hysteresis when pressure
  clears.

Everything here is deterministic under injected clocks: the breaker
and brownout state machines are count-windowed, backoff jitter comes
from a seeded generator keyed on ``(seed, request_id, attempt)``, and
:meth:`Supervisor.scan` can be driven manually in tests.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Mapping

from repro.service.request import ServeOutcome, ServiceError

__all__ = [
    "BreakerPolicy",
    "BrownoutController",
    "BrownoutPolicy",
    "CircuitBreaker",
    "PoisonRequestError",
    "RetryBudget",
    "RetryBudgetExhaustedError",
    "ServerStoppedError",
    "Supervisor",
    "WorkerCrashed",
]


class WorkerCrashed(BaseException):
    """A simulated worker-process crash (chaos injection).

    Deliberately a :class:`BaseException`: the worker's per-request
    ``except Exception`` must *not* be able to catch it — a crash takes
    the whole worker down, exactly like a segfault or OOM kill would in
    a process-per-worker deployment.  Only the worker's outermost
    supervision wrapper sees it.
    """


class PoisonRequestError(ServiceError):
    """The request killed too many workers in a row and is quarantined."""

    def __init__(self, request_id: int, tenant: str, kills: int) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.kills = kills
        super().__init__(
            f"request {request_id} from tenant {tenant!r} killed {kills} "
            f"worker(s) in a row; quarantined instead of retried"
        )


class RetryBudgetExhaustedError(ServiceError):
    """The request's bounded re-dispatch attempts are spent."""

    def __init__(self, request_id: int, tenant: str, attempts: int) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.attempts = attempts
        super().__init__(
            f"request {request_id} from tenant {tenant!r} failed after "
            f"{attempts} attempt(s); retry budget exhausted"
        )


class ServerStoppedError(ServiceError):
    """The server stopped (or a drain timed out) with the request unserved.

    Outcomes carrying this error have status ``"stopped"`` — a terminal
    outcome, so :meth:`PendingResult.result` never blocks forever on a
    request the pool will no longer serve.
    """

    def __init__(self, request_id: int, tenant: str, reason: str) -> None:
        self.request_id = request_id
        self.tenant = tenant
        super().__init__(
            f"request {request_id} from tenant {tenant!r} not served: "
            f"{reason}"
        )


# -- retry budget ------------------------------------------------------------


@dataclass(frozen=True)
class RetryBudget:
    """Bounded re-dispatch with exponential backoff and seeded jitter.

    ``attempts`` is the number of *re-dispatches* a request may consume
    after its first execution attempt (0 disables re-dispatch
    entirely).  The backoff before re-dispatch ``k`` (1-based) is
    ``backoff * factor**(k-1)`` stretched by a deterministic jitter in
    ``[1, 1 + jitter)`` drawn from a generator seeded on
    ``(seed, request_id, k)`` — two runs of the same workload back off
    identically, which is what lets chaos soaks be replayed.
    """

    attempts: int = 2
    backoff: float = 0.05
    factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ValueError("retry attempts must be non-negative")
        if self.backoff < 0 or self.factor < 1.0 or self.jitter < 0:
            raise ValueError("retry backoff/factor/jitter out of range")

    def delay(self, request_id: int, attempt: int) -> float:
        """Backoff seconds before re-dispatch ``attempt`` (1-based)."""
        base = self.backoff * (self.factor ** max(0, attempt - 1))
        rng = random.Random(
            (self.seed * 0x9E3779B1) ^ (request_id * 0x85EBCA77) ^ attempt
        )
        return base * (1.0 + self.jitter * rng.random())


# -- circuit breaker ---------------------------------------------------------


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs for one :class:`CircuitBreaker` family.

    ``key`` selects the breaker's isolation unit: ``"plan"`` keys on
    the request's content-addressed plan key (a poisonous *problem*
    trips it for every tenant), ``"tenant"`` keys on the tenant (a
    misbehaving client trips it for all its problems).
    """

    window: int = 16
    threshold: float = 0.5
    min_volume: int = 4
    cooldown: float = 1.0
    probes: int = 2
    probe_interval: float = 0.25
    key: str = "plan"

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_volume < 1 or self.probes < 1:
            raise ValueError("breaker window/min_volume/probes must be >= 1")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("breaker threshold must be in (0, 1]")
        if self.cooldown < 0 or self.probe_interval < 0:
            raise ValueError("breaker cooldown/probe_interval must be >= 0")
        if self.key not in ("plan", "tenant"):
            raise ValueError("breaker key must be 'plan' or 'tenant'")

    @classmethod
    def from_spec(cls, spec: str) -> "BreakerPolicy":
        """Parse ``window=16,threshold=0.5,cooldown=1.0,key=plan``."""
        return cls(**_parse_spec(spec, {
            "window": int, "threshold": float, "min_volume": int,
            "cooldown": float, "probes": int, "probe_interval": float,
            "key": str,
        }, what="breaker"))


def _parse_spec(spec: str, fields: Mapping, *, what: str) -> dict:
    out: dict = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, value = token.partition("=")
        if not sep or name not in fields:
            known = ", ".join(sorted(fields))
            raise ValueError(
                f"bad {what} spec token {token!r} (known: {known})"
            )
        try:
            out[name] = fields[name](value)
        except ValueError as exc:
            raise ValueError(
                f"bad {what} spec value for {name!r}: {exc}"
            ) from None
    return out


class _BreakerEntry:
    __slots__ = ("state", "recent", "opened_at", "last_probe",
                 "successes", "trips")

    def __init__(self) -> None:
        self.state = "closed"
        self.recent: list[bool] = []  # True = failure
        self.opened_at = 0.0
        self.last_probe: float | None = None
        self.successes = 0
        self.trips = 0


class CircuitBreaker:
    """Per-key closed → open → half-open breaker over recent outcomes.

    *Closed*: outcomes stream into a count window; once at least
    ``min_volume`` outcomes are in the window and the failure fraction
    reaches ``threshold``, the key **opens**.  *Open*: every
    :meth:`allow` is refused until ``cooldown`` seconds pass on the
    injected clock, then the key turns **half-open**.  *Half-open*: one
    probe request is admitted per ``probe_interval``; ``probes``
    consecutive successes close the key (window reset), any failure
    re-opens it.  All transitions are recorded on the optional hub so
    they land on the trace and in ``breaker_state`` gauges.
    """

    _STATES = {"closed": 0, "open": 1, "half-open": 2}

    def __init__(self, policy: BreakerPolicy | None = None, *,
                 clock=None, instr=None) -> None:
        import time

        self.policy = policy if policy is not None else BreakerPolicy()
        self.clock = clock if clock is not None else time.monotonic
        self.instr = instr
        self._lock = threading.Lock()
        self._keys: dict[str, _BreakerEntry] = {}

    def key_for(self, plan_key: str, tenant: str) -> str:
        return tenant if self.policy.key == "tenant" else plan_key

    def _transition(self, key: str, entry: _BreakerEntry, state: str) -> None:
        entry.state = state
        if state == "open":
            entry.trips += 1
            entry.opened_at = self.clock()
            entry.last_probe = None
        elif state == "half-open":
            entry.successes = 0
        else:  # closed
            entry.recent.clear()
        if self.instr is not None:
            label = key[:16]
            self.instr.metrics.gauge(
                "breaker_state", key=label
            ).set(self._STATES[state])
            self.instr.event(
                "breaker-" + state, "service", key=label, trips=entry.trips
            )

    def allow(self, plan_key: str, tenant: str) -> bool:
        """May a request for this key be admitted right now?"""
        key = self.key_for(plan_key, tenant)
        now = self.clock()
        with self._lock:
            entry = self._keys.get(key)
            if entry is None or entry.state == "closed":
                return True
            if entry.state == "open":
                if now - entry.opened_at < self.policy.cooldown:
                    return False
                self._transition(key, entry, "half-open")
            # half-open: one probe per probe_interval
            if (
                entry.last_probe is None
                or now - entry.last_probe >= self.policy.probe_interval
            ):
                entry.last_probe = now
                return True
            return False

    def record(self, plan_key: str, tenant: str, ok: bool) -> None:
        """Feed one terminal outcome into the key's failure window."""
        key = self.key_for(plan_key, tenant)
        with self._lock:
            entry = self._keys.setdefault(key, _BreakerEntry())
            if entry.state == "half-open":
                if ok:
                    entry.successes += 1
                    if entry.successes >= self.policy.probes:
                        self._transition(key, entry, "closed")
                else:
                    self._transition(key, entry, "open")
                return
            entry.recent.append(not ok)
            if len(entry.recent) > self.policy.window:
                del entry.recent[: len(entry.recent) - self.policy.window]
            if (
                entry.state == "closed"
                and len(entry.recent) >= self.policy.min_volume
                and sum(entry.recent) / len(entry.recent)
                >= self.policy.threshold
            ):
                self._transition(key, entry, "open")

    def state(self, plan_key: str, tenant: str = "") -> str:
        with self._lock:
            entry = self._keys.get(self.key_for(plan_key, tenant))
            return entry.state if entry is not None else "closed"

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "key_by": self.policy.key,
                "keys": {
                    key: {
                        "state": e.state,
                        "trips": e.trips,
                        "window_failures": sum(e.recent),
                        "window_observed": len(e.recent),
                    }
                    for key, e in sorted(self._keys.items())
                },
                "open": sum(
                    1 for e in self._keys.values() if e.state != "closed"
                ),
                "trips": sum(e.trips for e in self._keys.values()),
            }


# -- brownout ----------------------------------------------------------------

#: The declared degradation ladder, one action per level above 0.
BROWNOUT_LADDER: tuple[str, ...] = (
    "shed-low-priority",
    "widen-batching",
    "disable-tracing",
    "reject-admission",
)


@dataclass(frozen=True)
class BrownoutPolicy:
    """Knobs for the overload ladder.

    A served outcome is *slow* when its queue wait exceeds
    ``queue_wait_slo`` seconds; ``objective`` is the fraction of
    requests allowed to be slow before the error budget burns.  The
    controller steps **up** one level after ``hold`` consecutive
    observations with burn rate ≥ ``up``, and **down** one level after
    ``hold`` consecutive observations with burn ≤ ``down`` — the
    up/down gap plus the hold count is the hysteresis that keeps the
    ladder from flapping.
    """

    queue_wait_slo: float = 0.25
    objective: float = 0.9
    window: int = 40
    up: float = 1.0
    down: float = 0.25
    hold: int = 3
    widen: int = 4
    shed_priority: int = 1

    def __post_init__(self) -> None:
        if self.queue_wait_slo <= 0:
            raise ValueError("brownout queue_wait_slo must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("brownout objective must be in (0, 1)")
        if self.window < 1 or self.hold < 1 or self.widen < 1:
            raise ValueError("brownout window/hold/widen must be >= 1")
        if self.down > self.up:
            raise ValueError("brownout down threshold must not exceed up")
        if self.shed_priority < 0:
            raise ValueError("brownout shed_priority must be >= 0")

    @classmethod
    def from_spec(cls, spec: str) -> "BrownoutPolicy":
        """Parse ``slo=0.25,objective=0.9,up=1,down=0.25,hold=3``."""
        fields = _parse_spec(spec, {
            "slo": float, "objective": float, "window": int, "up": float,
            "down": float, "hold": int, "widen": int, "shed_priority": int,
        }, what="brownout")
        if "slo" in fields:
            fields["queue_wait_slo"] = fields.pop("slo")
        return cls(**fields)


class BrownoutController:
    """Queue-wait burn rate → degradation level, with hysteresis.

    Level 0 is normal service; level ``k`` applies the first ``k``
    actions of :data:`BROWNOUT_LADDER`.  The burn signal is a
    count-windowed :class:`~repro.obs.ops.BurnRateTracker` over "was
    this request's queue wait within SLO", so the controller is
    deterministic under frozen clocks.  ``on_change(old, new)`` fires
    outside the internal lock whenever the level moves.
    """

    def __init__(self, policy: BrownoutPolicy | None = None, *,
                 on_change=None, instr=None) -> None:
        from repro.obs.ops import BurnRateTracker

        self.policy = policy if policy is not None else BrownoutPolicy()
        self.on_change = on_change
        self.instr = instr
        self.level = 0
        self.steps = 0
        self._over = 0
        self._under = 0
        self._lock = threading.Lock()
        self.burn = BurnRateTracker(
            self.policy.objective, window=self.policy.window
        )

    @property
    def max_level(self) -> int:
        return len(BROWNOUT_LADDER)

    def actions(self) -> tuple[str, ...]:
        """The ladder actions currently in force."""
        return BROWNOUT_LADDER[: self.level]

    def admits(self, priority: int) -> bool:
        """Admission gate: may a request of this priority enter now?"""
        level = self.level
        if level >= self.max_level:
            return False  # reject-admission: shed everything
        if level >= 1:
            return priority < self.policy.shed_priority
        return True

    def observe(self, outcome: ServeOutcome) -> int | None:
        """Feed one outcome; returns the new level if it changed."""
        self.burn.record(outcome.queue_wait_s <= self.policy.queue_wait_slo)
        burn = self.burn.burn_rate
        changed = None
        with self._lock:
            if burn >= self.policy.up:
                self._over += 1
                self._under = 0
                if (
                    self._over >= self.policy.hold
                    and self.level < self.max_level
                ):
                    self.level += 1
                    self.steps += 1
                    self._over = 0
                    changed = self.level
            elif burn <= self.policy.down:
                self._under += 1
                self._over = 0
                if self._under >= self.policy.hold and self.level > 0:
                    self.level -= 1
                    self.steps += 1
                    self._under = 0
                    changed = self.level
            else:
                self._over = 0
                self._under = 0
        if changed is not None:
            if self.instr is not None:
                self.instr.metrics.gauge("brownout_level").set(changed)
                self.instr.event(
                    "brownout-step", "service", level=changed,
                    burn=round(burn, 4), actions=list(BROWNOUT_LADDER[:changed]),
                )
            if self.on_change is not None:
                self.on_change(changed)
        return changed

    def snapshot(self) -> dict:
        return {
            "level": self.level,
            "actions": list(self.actions()),
            "steps": self.steps,
            "burn": self.burn.snapshot(),
            "ladder": list(BROWNOUT_LADDER),
        }


# -- supervisor --------------------------------------------------------------


class Supervisor(threading.Thread):
    """Monitor thread: replace dead/hung workers, re-dispatch their work.

    The supervisor owns all pool surgery.  Worker threads report their
    own death through :meth:`notify_death` (the run-loop wrapper calls
    it on any unhandled exception); crashes that bypass even that —
    and hung workers, detected by the per-request ``watchdog`` deadline
    on the injected clock — are caught by the periodic :meth:`scan`.
    A victim is abandoned (its late results lose the idempotent
    fulfill race), retired from the pool, and replaced by a fresh
    worker; its in-flight requests are re-dispatched under the
    :class:`RetryBudget`, quarantined with
    :class:`PoisonRequestError` after ``poison_threshold`` worker
    kills, or failed with :class:`RetryBudgetExhaustedError` when the
    budget is spent.

    ``server`` is duck-typed (the real :class:`TransposeServer` in
    production, a light stub in unit tests): the supervisor uses
    ``scheduler``, ``workers`` / ``retired`` under ``_pool_lock``,
    ``_spawn_worker()``, ``_record(outcome)`` and ``instr``.
    """

    def __init__(
        self,
        server,
        *,
        retry: RetryBudget | None = None,
        watchdog: float | None = None,
        poison_threshold: int = 2,
        interval: float = 0.02,
        clock=None,
    ) -> None:
        super().__init__(name="repro-supervisor", daemon=True)
        import time

        if poison_threshold < 1:
            raise ValueError("poison_threshold must be at least 1")
        self.server = server
        self.retry = retry if retry is not None else RetryBudget()
        self.watchdog = watchdog
        self.poison_threshold = poison_threshold
        self.interval = interval
        self.clock = clock if clock is not None else time.monotonic
        self._halt = threading.Event()
        self._wake = threading.Event()
        self._lock = threading.Lock()
        #: (tenant, request_id) -> workers this request has killed.
        self.kills: dict[tuple[str, int], int] = {}
        #: Re-dispatches waiting out their backoff: (due, entry).
        self._later: list[tuple[float, object]] = []
        #: JSON-safe supervisor event log (the chaos artifact).
        self.log: list[dict] = []
        self.restarts = 0
        self.redispatches = 0
        self.quarantined = 0
        self.exhausted = 0

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        while not self._halt.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._halt.is_set():
                break
            try:
                self.scan()
            except Exception as exc:  # pragma: no cover - last resort
                self._log("supervisor-error", error=f"{type(exc).__name__}: {exc}")

    def stop(self) -> None:
        self._halt.set()
        self._wake.set()
        if self.is_alive():
            self.join(timeout=5.0)
        # Anything still waiting out a backoff will never run: flush it
        # back to the queue immediately so stop() can account for it.
        self._flush(force=True)

    def notify_death(self, worker, exc: BaseException) -> None:
        """Called from the dying worker thread itself; wakes the scan."""
        self._wake.set()

    # -- detection -----------------------------------------------------------

    def scan(self) -> None:
        """One detection pass plus due re-dispatches (test-callable)."""
        now = self.clock()
        with self.server._pool_lock:
            workers = list(self.server.workers)
        queue = self.server.scheduler.queue
        for worker in workers:
            if worker.dead:
                self._handle(worker, "crash", worker.death_error)
            elif (
                worker.ident is not None
                and not worker.is_alive()
                and not worker.finished
            ):
                self._handle(worker, "crash", "thread ended unexpectedly")
            elif (
                self.watchdog is not None
                and worker.executing_since is not None
                and now - worker.executing_since > self.watchdog
            ):
                self._handle(
                    worker,
                    "hang",
                    f"watchdog: request exceeded {self.watchdog:g}s "
                    f"on worker {worker.wid}",
                )
            elif worker.finished and not queue.closed:
                # Clean-looking exit while the server still serves: the
                # run loop returned without being told to — treat as a
                # crash so the pool does not silently shrink.
                self._handle(worker, "crash", "worker loop exited early")
        self._flush()

    # -- victim handling -----------------------------------------------------

    def _handle(self, worker, kind: str, error: str | None) -> None:
        if worker.abandoned:
            return  # already retired by an earlier pass
        worker.abandoned = True
        executing, innocent = worker.take_inflight()
        with self.server._pool_lock:
            if worker in self.server.workers:
                self.server.workers.remove(worker)
                self.server.retired.append(worker)
        self.restarts += 1
        instr = self.server.instr
        instr.metrics.counter("worker_restarts", kind=kind).inc()
        victims = [e.request.request_id for e in innocent]
        if executing is not None:
            victims.insert(0, executing.request.request_id)
        self._log(
            f"worker-{kind}", worker=worker.wid, error=error,
            inflight=victims,
        )
        instr.event(
            f"worker-{kind}", "service", worker=worker.wid,
            error=error or "", inflight=len(victims),
        )
        replacement = self.server._spawn_worker()
        if replacement is not None:
            self._log("worker-replaced", worker=worker.wid,
                      replacement=replacement.wid)
        # Batch-mates the victim never started are innocent: requeue
        # immediately, no budget consumed, no backoff.
        for entry in innocent:
            self._requeue(entry, budgeted=False)
        if executing is not None:
            self._judge(executing, worker, kind)

    def _judge(self, entry, worker, kind: str) -> None:
        """Decide a victim request's fate: quarantine, fail, or retry."""
        request = entry.request
        key = (request.tenant, request.request_id)
        with self._lock:
            self.kills[key] = self.kills.get(key, 0) + 1
            kills = self.kills[key]
        instr = self.server.instr
        if kills >= self.poison_threshold:
            error = PoisonRequestError(request.request_id, request.tenant,
                                       kills)
            self.quarantined += 1
            instr.metrics.counter(
                "service_poisoned", tenant=request.tenant
            ).inc()
            self._log("poison-quarantine", request_id=request.request_id,
                      tenant=request.tenant, kills=kills)
            instr.event("poison-quarantine", "service",
                        request_id=request.request_id, kills=kills)
            self._resolve(entry, "poisoned", error)
        elif entry.attempt >= self.retry.attempts:
            error = RetryBudgetExhaustedError(
                request.request_id, request.tenant, entry.attempt + 1
            )
            self.exhausted += 1
            self._log("retries-exhausted", request_id=request.request_id,
                      tenant=request.tenant, attempts=entry.attempt + 1)
            self._resolve(entry, "failed", error)
        else:
            entry.attempt += 1
            delay = self.retry.delay(request.request_id, entry.attempt)
            self.redispatches += 1
            instr.metrics.counter(
                "service_retries", tenant=request.tenant
            ).inc()
            self._log("redispatch", request_id=request.request_id,
                      tenant=request.tenant, attempt=entry.attempt,
                      backoff_s=round(delay, 6), after=kind)
            instr.event("redispatch", "service",
                        request_id=request.request_id, attempt=entry.attempt)
            with self._lock:
                self._later.append((self.clock() + delay, entry))

    def _requeue(self, entry, *, budgeted: bool) -> None:
        requeued = self.server.scheduler.requeue(entry)
        if requeued is None and budgeted:
            # Pending already resolved elsewhere (late result won) —
            # nothing to do; exactly-once is preserved by the scheduler.
            self._log("redispatch-dropped",
                      request_id=entry.request.request_id)

    def _resolve(self, entry, status: str, error: Exception) -> None:
        request = entry.request
        outcome = ServeOutcome(
            request_id=request.request_id,
            tenant=request.tenant,
            status=status,
            key=entry.key,
            attempts=entry.attempt + 1,
            error=f"{type(error).__name__}: {error}",
        )
        if self.server.scheduler.resolve(entry, outcome):
            self.server._record(outcome)

    def _flush(self, *, force: bool = False) -> None:
        """Requeue re-dispatches whose backoff has elapsed."""
        now = self.clock()
        with self._lock:
            due = [e for at, e in self._later if force or at <= now]
            self._later = [
                (at, e) for at, e in self._later if not (force or at <= now)
            ]
        for entry in due:
            self._requeue(entry, budgeted=True)

    # -- reporting -----------------------------------------------------------

    def _log(self, event: str, **attrs) -> None:
        record = {"event": event, "at": self.clock()}
        record.update(attrs)
        self.log.append(record)

    def snapshot(self) -> dict:
        with self._lock:
            backlog = len(self._later)
        return {
            "restarts": self.restarts,
            "redispatches": self.redispatches,
            "quarantined": self.quarantined,
            "exhausted": self.exhausted,
            "watchdog_s": self.watchdog,
            "retry_attempts": self.retry.attempts,
            "poison_threshold": self.poison_threshold,
            "backoff_backlog": backlog,
            "events": len(self.log),
        }
