"""Deterministic fault injection for the simulated cube.

The paper's schedules assume a healthy machine: the SPT/DPT/MPT
optimality arguments are edge-disjointness lemmas over *all* links, so a
single dead channel voids them.  Real ensemble machines ran with faulty
channels and nodes, and a production-scale system must model that.  This
module provides the fault *description*; the engine
(:mod:`repro.machine.engine`) enforces it, the router
(:mod:`repro.machine.routing`) detours around it, and the planner
(:mod:`repro.transpose.planner`) degrades gracefully when a schedule
would traverse a faulted resource.

A :class:`FaultPlan` is an immutable, seeded description of permanent
and transient failures of directed links and whole nodes.  Faults are
keyed by the engine's *phase index* (the number of communication phases
executed so far), which is the simulator's only clock: a fault is active
during ``[start, end)`` phases, with ``end=None`` meaning permanent.
Everything is deterministic — the same seed yields the same plan, and a
faulted run replays exactly.

Besides the fail-stop faults above, a plan can carry *silent*
:class:`CorruptionFault`\\ s: links that deliver, but deliver damaged
payloads.  Corruption is not fail-stop — the engine only notices it when
end-to-end checksums are armed (:mod:`repro.integrity`), which is why a
corrupting link deliberately does **not** count as faulted for planner
feasibility: the schedule still runs over it, and integrity machinery
(detect, retransmit, quarantine) is what turns a silent wrong answer
into a typed, recoverable event.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.cube.topology import is_edge

__all__ = [
    "CorruptionFault",
    "DisconnectedCubeError",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "LinkFailureError",
    "LinkFault",
    "NodeFailureError",
    "NodeFault",
    "RoutingStalledError",
]


class FaultKind(enum.Enum):
    """Whether a fault heals (transient) or persists (permanent)."""

    PERMANENT = "permanent"
    TRANSIENT = "transient"


# -- typed errors ---------------------------------------------------------------


class FaultError(RuntimeError):
    """Base class: a delivery was attempted over a faulted resource."""


class LinkFailureError(FaultError):
    """A message was scheduled over a faulted directed link."""

    def __init__(self, src: int, dst: int, phase: int, kind: FaultKind) -> None:
        self.src = src
        self.dst = dst
        self.phase = phase
        self.kind = kind
        super().__init__(
            f"directed link {src}->{dst} is {kind.value}ly faulted "
            f"at phase {phase}"
        )


class NodeFailureError(FaultError):
    """A message endpoint is a faulted node."""

    def __init__(self, node: int, phase: int, kind: FaultKind) -> None:
        self.node = node
        self.phase = phase
        self.kind = kind
        super().__init__(
            f"node {node} is {kind.value}ly faulted at phase {phase}"
        )


class DisconnectedCubeError(FaultError):
    """The surviving topology cannot carry the requested communication."""


class RoutingStalledError(RuntimeError):
    """Fault-tolerant routing can make no further progress.

    Raised instead of spinning: the message carries a diagnosis of which
    transfers are stuck where, so a stalled run is debuggable rather than
    a livelock.
    """


# -- fault descriptions ---------------------------------------------------------


@dataclass(frozen=True)
class LinkFault:
    """Failure of one *directed* link, active during phases [start, end)."""

    src: int
    dst: int
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start phase must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end phase must exceed its start")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.PERMANENT if self.end is None else FaultKind.TRANSIENT

    def active(self, phase: int) -> bool:
        return self.start <= phase and (self.end is None or phase < self.end)


@dataclass(frozen=True)
class NodeFault:
    """Failure of a whole node, active during phases [start, end)."""

    node: int
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node addresses must be non-negative")
        if self.start < 0:
            raise ValueError("fault start phase must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end phase must exceed its start")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.PERMANENT if self.end is None else FaultKind.TRANSIENT

    def active(self, phase: int) -> bool:
        return self.start <= phase and (self.end is None or phase < self.end)


#: Allowed payload-damage modes for :class:`CorruptionFault`.
CORRUPTION_MODES = ("bitflip", "scramble")


@dataclass(frozen=True)
class CorruptionFault:
    """A *silent* fault: link ``src->dst`` delivers damaged payloads.

    Unlike :class:`LinkFault`, a corrupting link still delivers — the
    engine raises nothing unless end-to-end checksums are armed.  While
    active during phases ``[start, end)``, each delivery attempt over
    the link is independently struck with probability ``rate``; the
    decision is a pure function of ``(seed, src, dst, phase, attempt)``,
    so a corrupted run replays bit-for-bit and a *retransmit* (next
    ``attempt``) redraws its fate.

    ``mode`` picks the damage model: ``bitflip`` flips one seeded bit of
    the payload, ``scramble`` reverses a seeded byte span — both are
    guaranteed to actually change the bytes, so a strike is never a
    silent no-op.
    """

    src: int
    dst: int
    start: int = 0
    end: int | None = None
    rate: float = 1.0
    mode: str = "bitflip"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start phase must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end phase must exceed its start")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("corruption rate must lie in (0, 1]")
        if self.mode not in CORRUPTION_MODES:
            raise ValueError(
                f"corruption mode must be one of {CORRUPTION_MODES}, "
                f"got {self.mode!r}"
            )

    @property
    def kind(self) -> FaultKind:
        return FaultKind.PERMANENT if self.end is None else FaultKind.TRANSIENT

    def active(self, phase: int) -> bool:
        return self.start <= phase and (self.end is None or phase < self.end)

    def strikes(self, phase: int, attempt: int = 0) -> bool:
        """Does delivery ``attempt`` at ``phase`` get corrupted?

        Deterministic per ``(seed, src, dst, phase, attempt)``: the same
        plan replays identically, and each retransmit redraws.
        """
        if not self.active(phase):
            return False
        if self.rate >= 1.0:
            return True
        mix = (
            (self.seed & 0xFFFFFFFF) * 0x9E3779B1
            ^ self.src * 0x85EBCA77
            ^ self.dst * 0xC2B2AE3D
            ^ phase * 0x27D4EB2F
            ^ attempt * 0x165667B1
        )
        return random.Random(mix).random() < self.rate

    def damage_seed(self, phase: int, attempt: int) -> int:
        """Seed for the payload-damage RNG of one struck delivery."""
        return (
            (self.seed & 0xFFFFFFFF) * 0x2545F491
            ^ self.src * 0xFF51AFD7
            ^ self.dst * 0xC4CEB9FE
            ^ phase * 0x9E3779B9
            ^ attempt * 0x94D049BB
        ) & 0x7FFFFFFF


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reproducible schedule of injected faults.

    ``n`` is the cube dimension the plan applies to; attaching a plan to
    a network of a different dimension is rejected by the engine.  The
    ``seed`` records provenance for :meth:`random` plans (it does not
    affect behaviour once the fault lists exist).

    ``topology`` optionally names a non-cube interconnect
    (:class:`~repro.topology.base.Topology`): link faults are then
    validated against *its* link set, connectivity queries walk its
    graph, and the engine rejects attaching the plan to a network over a
    different interconnect.  ``None`` (the default, and the only form
    earlier releases could write) means the Boolean ``n``-cube, with all
    historical validation messages preserved.
    """

    n: int
    link_faults: tuple[LinkFault, ...] = ()
    node_faults: tuple[NodeFault, ...] = ()
    seed: int | None = None
    corruption_faults: tuple[CorruptionFault, ...] = ()
    topology: object | None = field(default=None, compare=False)

    _links_by_edge: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _nodes_by_id: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _corruption_by_edge: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"cube dimension must be non-negative, got {self.n}")
        if not isinstance(self.link_faults, tuple):
            object.__setattr__(self, "link_faults", tuple(self.link_faults))
        if not isinstance(self.node_faults, tuple):
            object.__setattr__(self, "node_faults", tuple(self.node_faults))
        if not isinstance(self.corruption_faults, tuple):
            object.__setattr__(
                self, "corruption_faults", tuple(self.corruption_faults)
            )
        for f in self.link_faults:
            self._check_link_exists(f.src, f.dst, "link fault")
            self._links_by_edge.setdefault((f.src, f.dst), []).append(f)
        for f in self.node_faults:
            self._check_node_exists(f.node, "node fault")
            self._nodes_by_id.setdefault(f.node, []).append(f)
        for f in self.corruption_faults:
            self._check_link_exists(f.src, f.dst, "corruption fault")
            self._corruption_by_edge.setdefault((f.src, f.dst), []).append(f)

    def _check_node_exists(self, node: int, what: str) -> None:
        if self.topology is None:
            if node < 0 or node >> self.n:
                raise ValueError(f"{what} {node} outside {self.n}-cube")
        elif not 0 <= node < self.topology.num_nodes:
            raise ValueError(
                f"{what} {node} outside {self.topology.spec} "
                f"(valid ids are 0..{self.topology.num_nodes - 1})"
            )

    def _check_link_exists(self, src: int, dst: int, what: str) -> None:
        """Validate a directed link against the plan's interconnect.

        Faults name links by topology-native node ids, so which links
        exist is this plan's business, not the fault dataclass's: the
        same ``(0, 3)`` is a torus ring edge but not a cube edge.
        """
        if self.topology is None:
            if src < 0 or dst < 0 or src >> self.n or dst >> self.n:
                raise ValueError(
                    f"{what} {src}->{dst} outside {self.n}-cube"
                )
            if not is_edge(src, dst):
                raise ValueError(
                    f"({src}, {dst}) is not a cube edge; {what}s "
                    "apply to directed cube links"
                )
        else:
            if not (
                0 <= src < self.topology.num_nodes
                and 0 <= dst < self.topology.num_nodes
            ):
                raise ValueError(
                    f"{what} {src}->{dst} outside {self.topology.spec} "
                    f"(valid ids are 0..{self.topology.num_nodes - 1})"
                )
            if not self.topology.has_link(src, dst):
                raise ValueError(
                    f"{what} {src}->{dst} is not a link of "
                    f"{self.topology.spec}"
                )

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return (
            not self.link_faults
            and not self.node_faults
            and not self.corruption_faults
        )

    def link_fault(self, src: int, dst: int, phase: int) -> LinkFault | None:
        """The fault making directed link ``src->dst`` dead at ``phase``."""
        for f in self._links_by_edge.get((src, dst), ()):
            if f.active(phase):
                return f
        return None

    def corruption_fault(
        self, src: int, dst: int, phase: int
    ) -> CorruptionFault | None:
        """The active corruption fault on ``src->dst`` at ``phase``, if any."""
        for f in self._corruption_by_edge.get((src, dst), ()):
            if f.active(phase):
                return f
        return None

    def corrupting_links_ever(self) -> set[tuple[int, int]]:
        """Directed links that corrupt at *some* phase.

        Deliberately **not** part of :meth:`faulted_links_ever`: a
        corrupting link still delivers, so schedules remain feasible
        over it — quarantine (see :mod:`repro.integrity`) is what
        reactively promotes a repeat offender to dead.
        """
        return set(self._corruption_by_edge)

    def node_fault(self, node: int, phase: int) -> NodeFault | None:
        """The fault making ``node`` dead at ``phase``."""
        for f in self._nodes_by_id.get(node, ()):
            if f.active(phase):
                return f
        return None

    def faulted_links_ever(self) -> set[tuple[int, int]]:
        """Directed links faulted at *any* phase (planner feasibility)."""
        return set(self._links_by_edge)

    def faulted_nodes_ever(self) -> set[int]:
        return set(self._nodes_by_id)

    def permanent_links(self) -> set[tuple[int, int]]:
        return {
            (f.src, f.dst) for f in self.link_faults if f.end is None
        }

    def permanent_nodes(self) -> set[int]:
        return {f.node for f in self.node_faults if f.end is None}

    def last_transient_phase(self) -> int:
        """Largest ``end`` of any transient fault (-1 if none).

        Beyond this phase every remaining fault is permanent, so a round
        in which nothing advances can never heal — the router uses this
        to turn a would-be livelock into a diagnosable error.
        """
        ends = [
            f.end
            for f in (*self.link_faults, *self.node_faults)
            if f.end is not None
        ]
        return max(ends, default=-1)

    def surviving_connected(self) -> bool:
        """Is the topology minus *permanent* faults strongly connected?

        Transient faults heal, so they do not affect eventual
        deliverability; permanent ones carve the interconnect.  Requires
        every surviving node to reach every other over surviving
        directed links (both directions checked, since link faults are
        directed).  Walks the plan's topology's graph — the Boolean
        ``n``-cube when the plan carries none.
        """
        dead_nodes = self.permanent_nodes()
        dead_links = self.permanent_links()
        if self.topology is None:
            num_nodes = 1 << self.n

            def link_neighbors(x: int) -> list[int]:
                return [x ^ (1 << d) for d in range(self.n)]

        else:
            num_nodes = self.topology.num_nodes
            link_neighbors = self.topology.neighbors
        alive = [x for x in range(num_nodes) if x not in dead_nodes]
        if not alive:
            return False
        if len(alive) == 1:
            return True

        def reachable(start: int, forward: bool) -> set[int]:
            seen = {start}
            frontier = [start]
            while frontier:
                x = frontier.pop()
                for y in link_neighbors(x):
                    if y in seen or y in dead_nodes:
                        continue
                    link = (x, y) if forward else (y, x)
                    if link in dead_links:
                        continue
                    seen.add(y)
                    frontier.append(y)
            return seen

        want = set(alive)
        return reachable(alive[0], True) >= want and reachable(
            alive[0], False
        ) >= want

    def fork(self) -> "FaultPlan":
        """A structurally fresh, equal copy for another machine.

        The fault descriptions themselves are immutable, but each plan
        instance carries per-instance lookup indexes (plain dicts of
        lists, built in ``__post_init__``).  A serving pool that hands
        one parsed plan to many concurrently executing machines would
        share those containers across threads; forking gives every
        worker its own — equal by value, disjoint in storage — so no
        transient-window bookkeeping can ever be shared between
        machines built from the same spec.  See
        :mod:`repro.service.worker`, which forks (or re-parses) per
        request.
        """
        return FaultPlan(
            self.n,
            self.link_faults,
            self.node_faults,
            seed=self.seed,
            corruption_faults=self.corruption_faults,
            topology=self.topology,
        )

    def describe(self) -> str:
        """One-line human summary for reports and the CLI."""
        perm_l = sum(1 for f in self.link_faults if f.end is None)
        trans_l = len(self.link_faults) - perm_l
        perm_n = sum(1 for f in self.node_faults if f.end is None)
        trans_n = len(self.node_faults) - perm_n
        parts = [
            f"{perm_l} permanent + {trans_l} transient link fault(s)",
            f"{perm_n} permanent + {trans_n} transient node fault(s)",
        ]
        if self.corruption_faults:
            parts.append(
                f"{len(self.corruption_faults)} corrupting link(s)"
            )
        if self.topology is not None:
            parts.append(f"on {self.topology.spec}")
        tail = f" [seed={self.seed}]" if self.seed is not None else ""
        return ", ".join(parts) + tail

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single_link(cls, n: int, src: int, dst: int) -> "FaultPlan":
        """Kill one directed link permanently — the canonical test plan."""
        return cls(n, (LinkFault(src, dst),))

    @classmethod
    def random(
        cls,
        n: int,
        *,
        seed: int,
        link_rate: float = 0.0,
        transient_rate: float = 0.0,
        window: int = 64,
        node_failures: tuple[int, ...] = (),
        transient_nodes: tuple[tuple[int, int, int], ...] = (),
        extra_links: tuple[tuple[int, int], ...] = (),
        extra_transient: tuple[tuple[int, int, int, int], ...] = (),
        corrupt_rate: float = 0.0,
        corrupt_intensity: float = 0.4,
        extra_corrupt: tuple[tuple[int, int, int, int], ...] = (),
        topology: object | None = None,
    ) -> "FaultPlan":
        """A seeded random plan: reproducible fault scenarios.

        Each directed link of the interconnect — the ``N * n`` cube
        links, or ``topology.directed_links()`` in its canonical order
        when a :class:`~repro.topology.base.Topology` is given (for the
        hypercube adapter the two streams are byte-identical, so old
        seeds reproduce old plans) — fails permanently with
        probability ``link_rate``, else transiently with probability
        ``transient_rate`` (a random sub-interval of ``[0, window)``
        phases), else *corrupts silently* with probability
        ``corrupt_rate`` (a random window during which each delivery is
        struck with probability ``corrupt_intensity``).
        ``node_failures`` kills whole nodes permanently,
        ``transient_nodes`` adds healing node faults as
        ``(node, start, end)`` windows, ``extra_links`` adds explicit
        permanent directed-link faults, ``extra_transient`` adds
        explicit transient link faults as ``(src, dst, start, end)``
        windows, and ``extra_corrupt`` adds explicit corrupting links as
        ``(src, dst, start, end)`` windows (``rate=1.0``: every delivery
        in the window is struck).

        The per-link draws for corruption are guarded so that
        ``corrupt_rate=0`` consumes no RNG state: plans generated by
        earlier releases replay byte-identically.
        """
        if not 0.0 <= link_rate <= 1.0 or not 0.0 <= transient_rate <= 1.0:
            raise ValueError("fault rates must lie in [0, 1]")
        if not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError("fault rates must lie in [0, 1]")
        if not 0.0 < corrupt_intensity <= 1.0:
            raise ValueError("corrupt_intensity must lie in (0, 1]")
        if window < 1:
            raise ValueError("transient window must be at least 1 phase")
        rng = random.Random(seed)
        links: list[LinkFault] = []
        corruptions: list[CorruptionFault] = []
        if topology is None:
            directed = (
                (x, x ^ (1 << d)) for x in range(1 << n) for d in range(n)
            )
        else:
            directed = topology.directed_links()
        for x, y in directed:
            if rng.random() < link_rate:
                links.append(LinkFault(x, y))
            elif transient_rate and rng.random() < transient_rate:
                start = rng.randrange(window)
                span = 1 + rng.randrange(max(1, window // 8))
                links.append(LinkFault(x, y, start, start + span))
            elif corrupt_rate and rng.random() < corrupt_rate:
                start = rng.randrange(window)
                span = 1 + rng.randrange(max(1, window // 4))
                corruptions.append(
                    CorruptionFault(
                        x,
                        y,
                        start,
                        start + span,
                        rate=corrupt_intensity,
                        mode=CORRUPTION_MODES[rng.randrange(2)],
                        seed=rng.randrange(1 << 30),
                    )
                )
        for src, dst in extra_links:
            links.append(LinkFault(src, dst))
        for src, dst, start, end in extra_transient:
            links.append(LinkFault(src, dst, start, end))
        nodes = [NodeFault(x) for x in node_failures]
        for node, start, end in transient_nodes:
            nodes.append(NodeFault(node, start, end))
        for src, dst, start, end in extra_corrupt:
            corruptions.append(
                CorruptionFault(src, dst, start, end, seed=seed or 0)
            )
        return cls(
            n,
            tuple(links),
            tuple(nodes),
            seed=seed,
            corruption_faults=tuple(corruptions),
            topology=topology,
        )

    @classmethod
    def from_spec(
        cls, n: int, spec: str, *, topology: object | None = None
    ) -> "FaultPlan":
        """Parse a command-line fault specification.

        Comma-separated ``key=value`` items; recognised keys:

        * ``seed``            — RNG seed (default 0);
        * ``link_rate``       — permanent per-directed-link failure rate;
        * ``transient_rate``  — transient per-link failure rate;
        * ``corrupt_rate``    — silent per-link corruption rate;
        * ``corrupt_intensity`` — per-delivery strike probability on a
          randomly drawn corrupting link (default 0.4);
        * ``window``          — transient phase window (default 64);
        * ``nodes``           — ``+``-separated dead node list, e.g. ``3+9``;
        * ``tnodes``          — ``+``-separated transient nodes
          ``node@start-end`` (dead during phases ``[start, end)``);
        * ``links``           — ``+``-separated directed links ``src-dst``;
        * ``tlinks``          — ``+``-separated transient directed links
          ``src-dst@start-end`` (faulted during phases ``[start, end)``);
        * ``clinks``          — ``+``-separated silently corrupting links
          ``src-dst@start-end`` (every delivery in the window is struck;
          detection requires checksums, see :mod:`repro.integrity`).

        Example: ``seed=7,link_rate=0.02,nodes=5,links=0-1+6-4``,
        ``tlinks=0-1@3-9`` for a link dead only during phases 3..8, or
        ``clinks=0-1@0-16`` for a link that delivers damaged payloads
        during the first 16 phases.

        Node and link ids are *topology-native*: against the default
        cube they are the usual binary addresses, and when a
        :class:`~repro.topology.base.Topology` is given they are its
        flat node ids and the link tokens must name links that exist in
        it.

        Malformed tokens raise :class:`ValueError` naming the offending
        token: a bad separator, an out-of-range node id (the cube has
        nodes ``0 .. 2**n - 1``), a ``src-dst`` pair that is not a link
        of the selected topology, or a non-numeric rate all fail here
        rather than as a cryptic downstream error.
        """
        limit = topology.num_nodes if topology is not None else (1 << n)
        where_net = (
            f"the {n}-cube" if topology is None else topology.spec
        )

        def parse_int(value: str, key: str, token: str | None = None) -> int:
            try:
                return int(value)
            except ValueError:
                where = (
                    f"{key} token {token!r}"
                    if token is not None
                    else f"{key}={value!r}"
                )
                raise ValueError(
                    f"fault spec {where}: {value!r} is not an integer"
                ) from None

        def parse_rate(value: str, key: str) -> float:
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(
                    f"fault spec {key}={value!r}: {value!r} is not a number"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault spec {key}={value!r}: rate must lie in [0, 1]"
                )
            return rate

        def parse_node(text: str, key: str, token: str | None = None) -> int:
            token = text if token is None else token
            node = parse_int(text, key, token)
            if not 0 <= node < limit:
                raise ValueError(
                    f"fault spec {key} token {token!r}: node {node} is "
                    f"outside {where_net} (valid ids are 0..{limit - 1})"
                )
            return node

        def parse_link(
            text: str, key: str, token: str | None = None
        ) -> tuple[int, int]:
            token = text if token is None else token
            src_text, sep, dst_text = text.partition("-")
            if not sep or not src_text or not dst_text:
                raise ValueError(
                    f"fault spec {key} token {token!r} is not of the form "
                    "src-dst"
                )
            src = parse_node(src_text, key, token)
            dst = parse_node(dst_text, key, token)
            # Link ids are topology-native: reject tokens naming a link
            # the selected interconnect does not have, so a typo fails
            # here with the token named instead of downstream.
            if topology is None:
                if not is_edge(src, dst):
                    raise ValueError(
                        f"fault spec {key} token {token!r}: ({src}, {dst}) "
                        "is not a cube edge"
                    )
            elif not topology.has_link(src, dst):
                raise ValueError(
                    f"fault spec {key} token {token!r}: {src}->{dst} is "
                    f"not a link of {topology.spec}"
                )
            return (src, dst)

        def parse_window(
            window_text: str, key: str, token: str
        ) -> tuple[int, int]:
            start_text, sep, end_text = window_text.partition("-")
            if not sep or not start_text or not end_text:
                raise ValueError(
                    f"fault spec {key} token {token!r}: window "
                    f"{window_text!r} is not of the form start-end"
                )
            start = parse_int(start_text, key, token)
            end = parse_int(end_text, key, token)
            if start < 0 or end <= start:
                raise ValueError(
                    f"fault spec {key} token {token!r}: window must satisfy "
                    "0 <= start < end"
                )
            return start, end

        def parse_tlink(
            token: str, key: str = "tlinks"
        ) -> tuple[int, int, int, int]:
            link_text, sep, window_text = token.partition("@")
            if not sep or not window_text:
                raise ValueError(
                    f"fault spec {key} token {token!r} is not of the form "
                    "src-dst@start-end"
                )
            src, dst = parse_link(link_text, key, token)
            start, end = parse_window(window_text, key, token)
            return src, dst, start, end

        def parse_tnode(token: str) -> tuple[int, int, int]:
            node_text, sep, window_text = token.partition("@")
            if not sep or not window_text:
                raise ValueError(
                    f"fault spec tnodes token {token!r} is not of the form "
                    "node@start-end"
                )
            node = parse_node(node_text, "tnodes", token)
            start, end = parse_window(window_text, "tnodes", token)
            return node, start, end

        seed = 0
        link_rate = 0.0
        transient_rate = 0.0
        corrupt_rate = 0.0
        corrupt_intensity = 0.4
        window = 64
        nodes: tuple[int, ...] = ()
        tnodes: tuple[tuple[int, int, int], ...] = ()
        links: tuple[tuple[int, int], ...] = ()
        tlinks: tuple[tuple[int, int, int, int], ...] = ()
        clinks: tuple[tuple[int, int, int, int], ...] = ()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"fault spec item {item!r} is not of the form key=value"
                )
            key, value = item.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key == "seed":
                seed = parse_int(value, "seed")
            elif key == "link_rate":
                link_rate = parse_rate(value, "link_rate")
            elif key == "transient_rate":
                transient_rate = parse_rate(value, "transient_rate")
            elif key == "corrupt_rate":
                corrupt_rate = parse_rate(value, "corrupt_rate")
            elif key == "corrupt_intensity":
                corrupt_intensity = parse_rate(value, "corrupt_intensity")
            elif key == "window":
                window = parse_int(value, "window")
            elif key == "nodes":
                nodes = tuple(
                    parse_node(v, "nodes") for v in value.split("+") if v
                )
            elif key == "tnodes":
                tnodes = tuple(
                    parse_tnode(v) for v in value.split("+") if v
                )
            elif key == "links":
                links = tuple(
                    parse_link(v, "links") for v in value.split("+") if v
                )
            elif key == "tlinks":
                tlinks = tuple(
                    parse_tlink(v) for v in value.split("+") if v
                )
            elif key == "clinks":
                clinks = tuple(
                    parse_tlink(v, "clinks") for v in value.split("+") if v
                )
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r}; expected seed, "
                    "link_rate, transient_rate, corrupt_rate, "
                    "corrupt_intensity, window, nodes, tnodes, links, "
                    "tlinks or clinks"
                )
        return cls.random(
            n,
            seed=seed,
            link_rate=link_rate,
            transient_rate=transient_rate,
            window=window,
            node_failures=nodes,
            transient_nodes=tnodes,
            extra_links=links,
            extra_transient=tlinks,
            corrupt_rate=corrupt_rate,
            corrupt_intensity=corrupt_intensity,
            extra_corrupt=clinks,
            topology=topology,
        )
