"""Deterministic fault injection for the simulated cube.

The paper's schedules assume a healthy machine: the SPT/DPT/MPT
optimality arguments are edge-disjointness lemmas over *all* links, so a
single dead channel voids them.  Real ensemble machines ran with faulty
channels and nodes, and a production-scale system must model that.  This
module provides the fault *description*; the engine
(:mod:`repro.machine.engine`) enforces it, the router
(:mod:`repro.machine.routing`) detours around it, and the planner
(:mod:`repro.transpose.planner`) degrades gracefully when a schedule
would traverse a faulted resource.

A :class:`FaultPlan` is an immutable, seeded description of permanent
and transient failures of directed links and whole nodes.  Faults are
keyed by the engine's *phase index* (the number of communication phases
executed so far), which is the simulator's only clock: a fault is active
during ``[start, end)`` phases, with ``end=None`` meaning permanent.
Everything is deterministic — the same seed yields the same plan, and a
faulted run replays exactly.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.cube.topology import is_edge

__all__ = [
    "DisconnectedCubeError",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "LinkFailureError",
    "LinkFault",
    "NodeFailureError",
    "NodeFault",
    "RoutingStalledError",
]


class FaultKind(enum.Enum):
    """Whether a fault heals (transient) or persists (permanent)."""

    PERMANENT = "permanent"
    TRANSIENT = "transient"


# -- typed errors ---------------------------------------------------------------


class FaultError(RuntimeError):
    """Base class: a delivery was attempted over a faulted resource."""


class LinkFailureError(FaultError):
    """A message was scheduled over a faulted directed link."""

    def __init__(self, src: int, dst: int, phase: int, kind: FaultKind) -> None:
        self.src = src
        self.dst = dst
        self.phase = phase
        self.kind = kind
        super().__init__(
            f"directed link {src}->{dst} is {kind.value}ly faulted "
            f"at phase {phase}"
        )


class NodeFailureError(FaultError):
    """A message endpoint is a faulted node."""

    def __init__(self, node: int, phase: int, kind: FaultKind) -> None:
        self.node = node
        self.phase = phase
        self.kind = kind
        super().__init__(
            f"node {node} is {kind.value}ly faulted at phase {phase}"
        )


class DisconnectedCubeError(FaultError):
    """The surviving topology cannot carry the requested communication."""


class RoutingStalledError(RuntimeError):
    """Fault-tolerant routing can make no further progress.

    Raised instead of spinning: the message carries a diagnosis of which
    transfers are stuck where, so a stalled run is debuggable rather than
    a livelock.
    """


# -- fault descriptions ---------------------------------------------------------


@dataclass(frozen=True)
class LinkFault:
    """Failure of one *directed* link, active during phases [start, end)."""

    src: int
    dst: int
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start phase must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end phase must exceed its start")
        if not is_edge(self.src, self.dst):
            raise ValueError(
                f"({self.src}, {self.dst}) is not a cube edge; link faults "
                "apply to directed cube links"
            )

    @property
    def kind(self) -> FaultKind:
        return FaultKind.PERMANENT if self.end is None else FaultKind.TRANSIENT

    def active(self, phase: int) -> bool:
        return self.start <= phase and (self.end is None or phase < self.end)


@dataclass(frozen=True)
class NodeFault:
    """Failure of a whole node, active during phases [start, end)."""

    node: int
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node addresses must be non-negative")
        if self.start < 0:
            raise ValueError("fault start phase must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end phase must exceed its start")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.PERMANENT if self.end is None else FaultKind.TRANSIENT

    def active(self, phase: int) -> bool:
        return self.start <= phase and (self.end is None or phase < self.end)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reproducible schedule of injected faults.

    ``n`` is the cube dimension the plan applies to; attaching a plan to
    a network of a different dimension is rejected by the engine.  The
    ``seed`` records provenance for :meth:`random` plans (it does not
    affect behaviour once the fault lists exist).
    """

    n: int
    link_faults: tuple[LinkFault, ...] = ()
    node_faults: tuple[NodeFault, ...] = ()
    seed: int | None = None

    _links_by_edge: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _nodes_by_id: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"cube dimension must be non-negative, got {self.n}")
        if not isinstance(self.link_faults, tuple):
            object.__setattr__(self, "link_faults", tuple(self.link_faults))
        if not isinstance(self.node_faults, tuple):
            object.__setattr__(self, "node_faults", tuple(self.node_faults))
        for f in self.link_faults:
            if f.src >> self.n or f.dst >> self.n:
                raise ValueError(
                    f"link fault {f.src}->{f.dst} outside {self.n}-cube"
                )
            self._links_by_edge.setdefault((f.src, f.dst), []).append(f)
        for f in self.node_faults:
            if f.node >> self.n:
                raise ValueError(f"node fault {f.node} outside {self.n}-cube")
            self._nodes_by_id.setdefault(f.node, []).append(f)

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.link_faults and not self.node_faults

    def link_fault(self, src: int, dst: int, phase: int) -> LinkFault | None:
        """The fault making directed link ``src->dst`` dead at ``phase``."""
        for f in self._links_by_edge.get((src, dst), ()):
            if f.active(phase):
                return f
        return None

    def node_fault(self, node: int, phase: int) -> NodeFault | None:
        """The fault making ``node`` dead at ``phase``."""
        for f in self._nodes_by_id.get(node, ()):
            if f.active(phase):
                return f
        return None

    def faulted_links_ever(self) -> set[tuple[int, int]]:
        """Directed links faulted at *any* phase (planner feasibility)."""
        return set(self._links_by_edge)

    def faulted_nodes_ever(self) -> set[int]:
        return set(self._nodes_by_id)

    def permanent_links(self) -> set[tuple[int, int]]:
        return {
            (f.src, f.dst) for f in self.link_faults if f.end is None
        }

    def permanent_nodes(self) -> set[int]:
        return {f.node for f in self.node_faults if f.end is None}

    def last_transient_phase(self) -> int:
        """Largest ``end`` of any transient fault (-1 if none).

        Beyond this phase every remaining fault is permanent, so a round
        in which nothing advances can never heal — the router uses this
        to turn a would-be livelock into a diagnosable error.
        """
        ends = [
            f.end
            for f in (*self.link_faults, *self.node_faults)
            if f.end is not None
        ]
        return max(ends, default=-1)

    def surviving_connected(self) -> bool:
        """Is the topology minus *permanent* faults strongly connected?

        Transient faults heal, so they do not affect eventual
        deliverability; permanent ones carve the cube.  Requires every
        surviving node to reach every other over surviving directed
        links (both directions checked, since link faults are directed).
        """
        dead_nodes = self.permanent_nodes()
        dead_links = self.permanent_links()
        alive = [x for x in range(1 << self.n) if x not in dead_nodes]
        if not alive:
            return False
        if len(alive) == 1:
            return True

        def reachable(start: int, forward: bool) -> set[int]:
            seen = {start}
            frontier = [start]
            while frontier:
                x = frontier.pop()
                for d in range(self.n):
                    y = x ^ (1 << d)
                    if y in seen or y in dead_nodes:
                        continue
                    link = (x, y) if forward else (y, x)
                    if link in dead_links:
                        continue
                    seen.add(y)
                    frontier.append(y)
            return seen

        want = set(alive)
        return reachable(alive[0], True) >= want and reachable(
            alive[0], False
        ) >= want

    def fork(self) -> "FaultPlan":
        """A structurally fresh, equal copy for another machine.

        The fault descriptions themselves are immutable, but each plan
        instance carries per-instance lookup indexes (plain dicts of
        lists, built in ``__post_init__``).  A serving pool that hands
        one parsed plan to many concurrently executing machines would
        share those containers across threads; forking gives every
        worker its own — equal by value, disjoint in storage — so no
        transient-window bookkeeping can ever be shared between
        machines built from the same spec.  See
        :mod:`repro.service.worker`, which forks (or re-parses) per
        request.
        """
        return FaultPlan(
            self.n, self.link_faults, self.node_faults, seed=self.seed
        )

    def describe(self) -> str:
        """One-line human summary for reports and the CLI."""
        perm_l = sum(1 for f in self.link_faults if f.end is None)
        trans_l = len(self.link_faults) - perm_l
        perm_n = sum(1 for f in self.node_faults if f.end is None)
        trans_n = len(self.node_faults) - perm_n
        parts = [
            f"{perm_l} permanent + {trans_l} transient link fault(s)",
            f"{perm_n} permanent + {trans_n} transient node fault(s)",
        ]
        tail = f" [seed={self.seed}]" if self.seed is not None else ""
        return ", ".join(parts) + tail

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single_link(cls, n: int, src: int, dst: int) -> "FaultPlan":
        """Kill one directed link permanently — the canonical test plan."""
        return cls(n, (LinkFault(src, dst),))

    @classmethod
    def random(
        cls,
        n: int,
        *,
        seed: int,
        link_rate: float = 0.0,
        transient_rate: float = 0.0,
        window: int = 64,
        node_failures: tuple[int, ...] = (),
        extra_links: tuple[tuple[int, int], ...] = (),
        extra_transient: tuple[tuple[int, int, int, int], ...] = (),
    ) -> "FaultPlan":
        """A seeded random plan: reproducible fault scenarios.

        Each of the ``N * n`` directed links fails permanently with
        probability ``link_rate``, else transiently with probability
        ``transient_rate`` (a random sub-interval of ``[0, window)``
        phases).  ``node_failures`` kills whole nodes permanently,
        ``extra_links`` adds explicit permanent directed-link faults, and
        ``extra_transient`` adds explicit transient link faults as
        ``(src, dst, start, end)`` windows.
        """
        if not 0.0 <= link_rate <= 1.0 or not 0.0 <= transient_rate <= 1.0:
            raise ValueError("fault rates must lie in [0, 1]")
        if window < 1:
            raise ValueError("transient window must be at least 1 phase")
        rng = random.Random(seed)
        links: list[LinkFault] = []
        for x in range(1 << n):
            for d in range(n):
                y = x ^ (1 << d)
                if rng.random() < link_rate:
                    links.append(LinkFault(x, y))
                elif transient_rate and rng.random() < transient_rate:
                    start = rng.randrange(window)
                    span = 1 + rng.randrange(max(1, window // 8))
                    links.append(LinkFault(x, y, start, start + span))
        for src, dst in extra_links:
            links.append(LinkFault(src, dst))
        for src, dst, start, end in extra_transient:
            links.append(LinkFault(src, dst, start, end))
        nodes = tuple(NodeFault(x) for x in node_failures)
        return cls(n, tuple(links), nodes, seed=seed)

    @classmethod
    def from_spec(cls, n: int, spec: str) -> "FaultPlan":
        """Parse a command-line fault specification.

        Comma-separated ``key=value`` items; recognised keys:

        * ``seed``            — RNG seed (default 0);
        * ``link_rate``       — permanent per-directed-link failure rate;
        * ``transient_rate``  — transient per-link failure rate;
        * ``window``          — transient phase window (default 64);
        * ``nodes``           — ``+``-separated dead node list, e.g. ``3+9``;
        * ``links``           — ``+``-separated directed links ``src-dst``;
        * ``tlinks``          — ``+``-separated transient directed links
          ``src-dst@start-end`` (faulted during phases ``[start, end)``).

        Example: ``seed=7,link_rate=0.02,nodes=5,links=0-1+6-4`` or
        ``tlinks=0-1@3-9`` for a link dead only during phases 3..8.

        Malformed tokens raise :class:`ValueError` naming the offending
        token: a bad separator, an out-of-range node id (the cube has
        nodes ``0 .. 2**n - 1``) or a non-numeric rate all fail here
        rather than as a cryptic downstream error.
        """
        limit = 1 << n

        def parse_int(value: str, key: str, token: str | None = None) -> int:
            try:
                return int(value)
            except ValueError:
                where = (
                    f"{key} token {token!r}"
                    if token is not None
                    else f"{key}={value!r}"
                )
                raise ValueError(
                    f"fault spec {where}: {value!r} is not an integer"
                ) from None

        def parse_rate(value: str, key: str) -> float:
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(
                    f"fault spec {key}={value!r}: {value!r} is not a number"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault spec {key}={value!r}: rate must lie in [0, 1]"
                )
            return rate

        def parse_node(text: str, key: str, token: str | None = None) -> int:
            token = text if token is None else token
            node = parse_int(text, key, token)
            if not 0 <= node < limit:
                raise ValueError(
                    f"fault spec {key} token {token!r}: node {node} is "
                    f"outside the {n}-cube (valid ids are 0..{limit - 1})"
                )
            return node

        def parse_link(
            text: str, key: str, token: str | None = None
        ) -> tuple[int, int]:
            token = text if token is None else token
            src_text, sep, dst_text = text.partition("-")
            if not sep or not src_text or not dst_text:
                raise ValueError(
                    f"fault spec {key} token {token!r} is not of the form "
                    "src-dst"
                )
            return (
                parse_node(src_text, key, token),
                parse_node(dst_text, key, token),
            )

        def parse_tlink(token: str) -> tuple[int, int, int, int]:
            link_text, sep, window_text = token.partition("@")
            if not sep or not window_text:
                raise ValueError(
                    f"fault spec tlinks token {token!r} is not of the form "
                    "src-dst@start-end"
                )
            src, dst = parse_link(link_text, "tlinks", token)
            start_text, sep, end_text = window_text.partition("-")
            if not sep or not start_text or not end_text:
                raise ValueError(
                    f"fault spec tlinks token {token!r}: window "
                    f"{window_text!r} is not of the form start-end"
                )
            start = parse_int(start_text, "tlinks", token)
            end = parse_int(end_text, "tlinks", token)
            if start < 0 or end <= start:
                raise ValueError(
                    f"fault spec tlinks token {token!r}: window must satisfy "
                    "0 <= start < end"
                )
            return src, dst, start, end

        seed = 0
        link_rate = 0.0
        transient_rate = 0.0
        window = 64
        nodes: tuple[int, ...] = ()
        links: tuple[tuple[int, int], ...] = ()
        tlinks: tuple[tuple[int, int, int, int], ...] = ()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"fault spec item {item!r} is not of the form key=value"
                )
            key, value = item.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key == "seed":
                seed = parse_int(value, "seed")
            elif key == "link_rate":
                link_rate = parse_rate(value, "link_rate")
            elif key == "transient_rate":
                transient_rate = parse_rate(value, "transient_rate")
            elif key == "window":
                window = parse_int(value, "window")
            elif key == "nodes":
                nodes = tuple(
                    parse_node(v, "nodes") for v in value.split("+") if v
                )
            elif key == "links":
                links = tuple(
                    parse_link(v, "links") for v in value.split("+") if v
                )
            elif key == "tlinks":
                tlinks = tuple(
                    parse_tlink(v) for v in value.split("+") if v
                )
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r}; expected seed, "
                    "link_rate, transient_rate, window, nodes, links or "
                    "tlinks"
                )
        return cls.random(
            n,
            seed=seed,
            link_rate=link_rate,
            transient_rate=transient_rate,
            window=window,
            node_failures=nodes,
            extra_links=links,
            extra_transient=tlinks,
        )
