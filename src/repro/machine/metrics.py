"""Execution statistics collected by the simulator.

:class:`TransferStats` is a *typed view* over a
:class:`~repro.obs.metrics.MetricsRegistry`: every field it exposes —
``time``, ``startups``, ``element_hops``, per-link loads, per-phase
durations — is backed by a named instrument in the registry, so the
paper-style counters and any labelled metrics new subsystems add travel
through one store.  The view exists because the engine's hot path wants
typed, bound instruments (``self._startups.inc(k)``) and the analysis
layer wants named fields (``stats.startups``); both resolve to the same
series.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, MetricsRegistry

__all__ = ["TransferStats"]

#: Fields backed by a plain counter, in canonical (summary/merge) order.
_COUNTER_FIELDS = (
    "time",
    "comm_time",
    "copy_time",
    "phases",
    "messages",
    "startups",
    "element_hops",
    "copied_elements",
    "link_fault_events",
    "node_fault_events",
    "retries",
    "detour_hops",
    "stall_phases",
    "plan_hits",
    "plan_misses",
    "plan_evictions",
    "checkpoints",
    "rollbacks",
    "replayed_phases",
    "wasted_elements",
    "integrity_corrupted_deliveries",
    "integrity_retransmits",
    "integrity_quarantined_links",
    "integrity_checksum_overhead",
    "traced_requests",
    "trace_wall_seconds",
)

#: Counters omitted from :meth:`TransferStats.as_dict` while zero.  The
#: integrity counters joined after the first pinned baselines were
#: recorded, and the tracing counters after that; suppressing their zero
#: values keeps every pre-existing baseline document and clean-run stats
#: fingerprint byte-identical (``from_dict`` already defaults absent
#: names to zero).  The tracing counters only ever move on hubs with an
#: armed wall clock, which no baseline scenario has.
_ZERO_SUPPRESSED = (
    "integrity_corrupted_deliveries",
    "integrity_retransmits",
    "integrity_quarantined_links",
    "integrity_checksum_overhead",
    "traced_requests",
    "trace_wall_seconds",
)


class TransferStats:
    """Accumulated costs of a simulated run.

    ``time`` is the modelled wall-clock time; the remaining counters
    support the paper's style of analysis (number of start-ups, element
    transfers, communication phases, link utilization).  All counters
    live in :attr:`registry`; the attributes here are typed accessors.
    """

    __slots__ = ("registry", "_c", "_links", "_max_link", "_phase_hist")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self._c = {name: reg.counter(name) for name in _COUNTER_FIELDS}
        self._max_link = reg.gauge("max_link_elements")
        self._phase_hist = reg.histogram("phase_times")
        #: (src, dst) -> bound link-load counter; the registry holds the
        #: same instruments labelled ``link_elements{src=..,dst=..}``.
        self._links: dict[tuple[int, int], Counter] = {}

    # -- recording (the engine's hot path) ----------------------------------

    def record_phase(self, duration: float) -> None:
        self._c["phases"].value += 1
        self._phase_hist.observe(duration)
        self._c["time"].value += duration
        self._c["comm_time"].value += duration

    def record_message(
        self, src: int, dst: int, elements: int, packets: int
    ) -> None:
        c = self._c
        c["messages"].value += 1
        c["startups"].value += packets
        c["element_hops"].value += elements
        link = self._links.get((src, dst))
        if link is None:
            link = self.registry.counter("link_elements", src=src, dst=dst)
            self._links[(src, dst)] = link
        link.value += elements
        self._max_link.update_max(link.value)

    def record_copy(self, elements: int, duration: float) -> None:
        self._c["copied_elements"].value += elements
        self._c["copy_time"].value += duration
        self._c["time"].value += duration

    def record_fault(self, *, node: bool) -> None:
        """A delivery hit a faulted node (``node=True``) or link."""
        field = "node_fault_events" if node else "link_fault_events"
        self._c[field].value += 1

    def record_retry(self) -> None:
        """A routed transfer waited a round for a transient fault to heal."""
        self._c["retries"].value += 1

    def record_detour(self) -> None:
        """A routed transfer misrouted one hop around a faulted resource."""
        self._c["detour_hops"].value += 1

    def record_stall(self) -> None:
        """A routing round in which no transfer could advance."""
        self._c["stall_phases"].value += 1

    def record_checkpoint(self) -> None:
        """A consistent snapshot of the node memories was retained."""
        self._c["checkpoints"].value += 1

    def record_rollback(self, replayed_phases: int = 0) -> None:
        """Execution rolled back to a checkpoint; ``replayed_phases`` is
        the number of communication phases the resume must re-execute."""
        if replayed_phases < 0:
            raise ValueError("cannot replay a negative number of phases")
        self._c["rollbacks"].value += 1
        self._c["replayed_phases"].value += replayed_phases

    def record_wasted(self, elements: int) -> None:
        """Element-hops whose work was discarded by a rollback or restart."""
        if elements < 0:
            raise ValueError("cannot waste a negative number of elements")
        self._c["wasted_elements"].value += elements

    def record_corrupted_delivery(self) -> None:
        """A delivery failed end-to-end checksum verification."""
        self._c["integrity_corrupted_deliveries"].value += 1

    def record_retransmit(self) -> None:
        """A corrupted message was retransmitted over its link."""
        self._c["integrity_retransmits"].value += 1

    def record_quarantine(self) -> None:
        """A flaky link was quarantined (dead from the next phase on)."""
        self._c["integrity_quarantined_links"].value += 1

    def record_checksum_overhead(self, elements: int) -> None:
        """Elements checksummed at send time (including retransmissions)."""
        if elements < 0:
            raise ValueError("cannot checksum a negative element count")
        self._c["integrity_checksum_overhead"].value += elements

    def record_traced(self, wall_seconds: float = 0.0) -> None:
        """A request served under an armed trace context.

        ``wall_seconds`` is the request's measured wall-clock execute
        time; both counters stay zero (and suppressed from
        :meth:`as_dict`) on untraced runs, so arming tracing never
        perturbs the pinned baselines.
        """
        if wall_seconds < 0:
            raise ValueError("wall_seconds cannot be negative")
        self._c["traced_requests"].value += 1
        self._c["trace_wall_seconds"].value += wall_seconds

    def record_plan_event(self, kind: str) -> None:
        """A plan-cache lookup outcome: ``hit``, ``miss`` or ``eviction``."""
        if kind not in ("hit", "miss", "eviction"):
            raise ValueError(f"unknown plan-cache event {kind!r}")
        self._c[f"plan_{kind}s" if kind != "miss" else "plan_misses"].value += 1

    # -- typed accessors ----------------------------------------------------

    @property
    def max_link_elements(self) -> int:
        return self._max_link.value

    @max_link_elements.setter
    def max_link_elements(self, value: int) -> None:
        self._max_link.set(value)

    @property
    def link_elements(self) -> dict[tuple[int, int], int]:
        """Per-directed-link element loads (a fresh dict each access)."""
        return {link: c.value for link, c in self._links.items()}

    @property
    def phase_times(self) -> list[float]:
        """Per-phase durations, in execution order (the live list)."""
        return self._phase_hist.values

    @property
    def fault_events(self) -> int:
        """Total fault encounters (link + node) observed by the engine."""
        return self.link_fault_events + self.node_fault_events

    # -- composition ---------------------------------------------------------

    def merge(self, other: "TransferStats") -> None:
        """Fold another stats object into this one (sequential composition)."""
        for name in _COUNTER_FIELDS:
            self._c[name].value += other._c[name].value
        for (src, dst), counter in other._links.items():
            link = self._links.get((src, dst))
            if link is None:
                link = self.registry.counter("link_elements", src=src, dst=dst)
                self._links[(src, dst)] = link
            link.value += counter.value
            self._max_link.update_max(link.value)
        for duration in other.phase_times:
            self._phase_hist.observe(duration)

    def summary(self) -> str:
        text = (
            f"time={self.time * 1e3:.3f} ms (comm {self.comm_time * 1e3:.3f}, "
            f"copy {self.copy_time * 1e3:.3f}) phases={self.phases} "
            f"messages={self.messages} startups={self.startups} "
            f"element_hops={self.element_hops}"
        )
        if self.fault_events or self.retries or self.detour_hops:
            text += (
                f" faults={self.fault_events} retries={self.retries} "
                f"detours={self.detour_hops} stalls={self.stall_phases}"
            )
        if self.plan_hits or self.plan_misses or self.plan_evictions:
            text += (
                f" plan_hits={self.plan_hits} plan_misses={self.plan_misses} "
                f"plan_evictions={self.plan_evictions}"
            )
        if self.checkpoints or self.rollbacks:
            text += (
                f" checkpoints={self.checkpoints} rollbacks={self.rollbacks} "
                f"replayed_phases={self.replayed_phases} "
                f"wasted_elements={self.wasted_elements}"
            )
        if self.integrity_corrupted_deliveries or self.integrity_retransmits:
            text += (
                f" corrupted={self.integrity_corrupted_deliveries} "
                f"retransmits={self.integrity_retransmits} "
                f"quarantined={self.integrity_quarantined_links}"
            )
        return text

    def as_dict(self) -> dict:
        """Machine-readable counters (JSON-safe: link keys stringified)."""
        doc = {
            name: self._c[name].value
            for name in _COUNTER_FIELDS
            if name not in _ZERO_SUPPRESSED or self._c[name].value
        }
        doc["max_link_elements"] = self.max_link_elements
        doc["link_elements"] = {
            f"{src}->{dst}": c.value
            for (src, dst), c in sorted(self._links.items())
        }
        doc["phase_times"] = list(self.phase_times)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "TransferStats":
        """Rebuild stats from :meth:`as_dict` output (JSON round-trip)."""
        stats = cls()
        for name in _COUNTER_FIELDS:
            stats._c[name].value = doc.get(name, 0)
        stats._max_link.set(doc.get("max_link_elements", 0))
        for key, load in doc.get("link_elements", {}).items():
            src_text, _, dst_text = key.partition("->")
            src, dst = int(src_text), int(dst_text)
            counter = stats.registry.counter("link_elements", src=src, dst=dst)
            counter.value = load
            stats._links[(src, dst)] = counter
        for duration in doc.get("phase_times", ()):
            stats._phase_hist.observe(duration)
        return stats

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransferStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return f"TransferStats({self.summary()})"


def _counter_property(name: str) -> property:
    def fget(self):
        return self._c[name].value

    def fset(self, value):
        self._c[name].value = value

    fget.__name__ = fset.__name__ = name
    return property(fget, fset)


for _name in _COUNTER_FIELDS:
    setattr(TransferStats, _name, _counter_property(_name))
del _name
