"""Execution statistics collected by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TransferStats"]


@dataclass
class TransferStats:
    """Accumulated costs of a simulated run.

    ``time`` is the modelled wall-clock time; the remaining counters
    support the paper's style of analysis (number of start-ups, element
    transfers, communication phases, link utilization).
    """

    time: float = 0.0
    comm_time: float = 0.0
    copy_time: float = 0.0
    phases: int = 0
    messages: int = 0
    startups: int = 0
    element_hops: int = 0
    copied_elements: int = 0
    max_link_elements: int = 0
    link_fault_events: int = 0
    node_fault_events: int = 0
    retries: int = 0
    detour_hops: int = 0
    stall_phases: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    link_elements: dict[tuple[int, int], int] = field(default_factory=dict)
    phase_times: list[float] = field(default_factory=list)

    def record_phase(self, duration: float) -> None:
        self.phases += 1
        self.phase_times.append(duration)
        self.time += duration
        self.comm_time += duration

    def record_message(
        self, src: int, dst: int, elements: int, packets: int
    ) -> None:
        self.messages += 1
        self.startups += packets
        self.element_hops += elements
        load = self.link_elements.get((src, dst), 0) + elements
        self.link_elements[(src, dst)] = load
        if load > self.max_link_elements:
            self.max_link_elements = load

    def record_copy(self, elements: int, duration: float) -> None:
        self.copied_elements += elements
        self.copy_time += duration
        self.time += duration

    def record_fault(self, *, node: bool) -> None:
        """A delivery hit a faulted node (``node=True``) or link."""
        if node:
            self.node_fault_events += 1
        else:
            self.link_fault_events += 1

    def record_retry(self) -> None:
        """A routed transfer waited a round for a transient fault to heal."""
        self.retries += 1

    def record_detour(self) -> None:
        """A routed transfer misrouted one hop around a faulted resource."""
        self.detour_hops += 1

    def record_stall(self) -> None:
        """A routing round in which no transfer could advance."""
        self.stall_phases += 1

    def record_plan_event(self, kind: str) -> None:
        """A plan-cache lookup outcome: ``hit``, ``miss`` or ``eviction``."""
        if kind == "hit":
            self.plan_hits += 1
        elif kind == "miss":
            self.plan_misses += 1
        elif kind == "eviction":
            self.plan_evictions += 1
        else:
            raise ValueError(f"unknown plan-cache event {kind!r}")

    @property
    def fault_events(self) -> int:
        """Total fault encounters (link + node) observed by the engine."""
        return self.link_fault_events + self.node_fault_events

    def merge(self, other: "TransferStats") -> None:
        """Fold another stats object into this one (sequential composition)."""
        self.time += other.time
        self.comm_time += other.comm_time
        self.copy_time += other.copy_time
        self.phases += other.phases
        self.messages += other.messages
        self.startups += other.startups
        self.element_hops += other.element_hops
        self.copied_elements += other.copied_elements
        self.link_fault_events += other.link_fault_events
        self.node_fault_events += other.node_fault_events
        self.retries += other.retries
        self.detour_hops += other.detour_hops
        self.stall_phases += other.stall_phases
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_evictions += other.plan_evictions
        for link, load in other.link_elements.items():
            new = self.link_elements.get(link, 0) + load
            self.link_elements[link] = new
            if new > self.max_link_elements:
                self.max_link_elements = new
        self.phase_times.extend(other.phase_times)

    def summary(self) -> str:
        text = (
            f"time={self.time * 1e3:.3f} ms (comm {self.comm_time * 1e3:.3f}, "
            f"copy {self.copy_time * 1e3:.3f}) phases={self.phases} "
            f"messages={self.messages} startups={self.startups} "
            f"element_hops={self.element_hops}"
        )
        if self.fault_events or self.retries or self.detour_hops:
            text += (
                f" faults={self.fault_events} retries={self.retries} "
                f"detours={self.detour_hops} stalls={self.stall_phases}"
            )
        if self.plan_hits or self.plan_misses or self.plan_evictions:
            text += (
                f" plan_hits={self.plan_hits} plan_misses={self.plan_misses} "
                f"plan_evictions={self.plan_evictions}"
            )
        return text

    def as_dict(self) -> dict:
        """Machine-readable counters (JSON-safe: link keys stringified)."""
        return {
            "time": self.time,
            "comm_time": self.comm_time,
            "copy_time": self.copy_time,
            "phases": self.phases,
            "messages": self.messages,
            "startups": self.startups,
            "element_hops": self.element_hops,
            "copied_elements": self.copied_elements,
            "max_link_elements": self.max_link_elements,
            "link_fault_events": self.link_fault_events,
            "node_fault_events": self.node_fault_events,
            "retries": self.retries,
            "detour_hops": self.detour_hops,
            "stall_phases": self.stall_phases,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_evictions": self.plan_evictions,
        }
