"""The phase-synchronous cube network simulator.

Algorithms are sequences of *phases*.  In one phase every node may send
messages to cube neighbours; the engine

1. validates every message crosses a real interconnect link (the
   default interconnect is the Boolean n-cube; see
   :mod:`repro.topology`),
2. rejects (or, on request, serializes) directed-link conflicts,
3. physically moves the named blocks between node memories,
4. charges time under the machine's cost model:

   * message cost = (packets * tau) + (elements * t_c), where packets is
     ``ceil(elements / B_m)`` — or 1 on a pipelined (bit-serial) machine;
   * **one-port**: a node's sends serialize, its receives serialize, and
     (bidirectional links) sending overlaps receiving, so the node's
     phase time is ``max(sum sends, sum receives)``;
   * **n-port**: each directed link is an independent channel, so the
     binding constraint is the per-link serialized load;
   * phase time = maximum over these loads; total time accumulates.

Local work (buffer copies, local transposes) is charged through
:meth:`CubeNetwork.execute_local`, which takes per-node costs and adds the
maximum (nodes work concurrently).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.machine.faults import (
    FaultPlan,
    LinkFailureError,
    NodeFailureError,
)
from repro.machine.memory import NodeMemory
from repro.machine.message import Block, Message
from repro.machine.metrics import TransferStats
from repro.machine.params import MachineParams, PortModel
from repro.topology import Hypercube, Topology

__all__ = ["CubeNetwork", "EnsembleNetwork", "LinkConflictError"]


class LinkConflictError(RuntimeError):
    """Two messages of one phase contend for the same directed link."""


class EnsembleNetwork:
    """A simulated ensemble machine over a pluggable interconnect.

    The interconnect is a :class:`~repro.topology.base.Topology`; the
    default is the Boolean n-cube of the machine's dimension, which
    preserves the historical :class:`CubeNetwork` behaviour bit-for-bit
    (``CubeNetwork`` remains as an alias).  The topology's structural
    invariants are validated at construction.

    Messages sharing a directed link within a phase serialize on it (each
    keeps its own start-ups) — that is the §8.1 unbuffered send pattern.
    Pipelined schedules that *guarantee* edge-disjointness (SPT/DPT/MPT
    cycles) pass ``exclusive=True`` to :meth:`execute_phase`, turning any
    link sharing into a :class:`LinkConflictError` — a free correctness
    check of the paper's disjointness lemmas on every run.
    """

    def __init__(
        self,
        params: MachineParams,
        *,
        faults: FaultPlan | None = None,
        integrity=None,
        topology: Topology | None = None,
    ) -> None:
        if topology is None:
            topology = Hypercube(params.n)
        topology.validate()
        if topology.num_nodes != params.num_procs:
            raise ValueError(
                f"topology {topology.spec!r} has {topology.num_nodes} "
                f"node(s) but the machine parameters describe "
                f"{params.num_procs}"
            )
        #: The interconnect graph every message must respect.
        self.topology = topology
        if faults is not None:
            if faults.n != params.n:
                raise ValueError(
                    f"fault plan is for a {faults.n}-cube but the machine "
                    f"is a {params.n}-cube"
                )
            plan_spec = (
                faults.topology.spec
                if faults.topology is not None
                else "cube"
            )
            if plan_spec != topology.spec:
                raise ValueError(
                    f"fault plan targets topology {plan_spec!r} but the "
                    f"machine interconnect is {topology.spec!r}"
                )
        self.params = params
        self.memories = [NodeMemory(x) for x in range(params.num_procs)]
        self.stats = TransferStats()
        #: Optional :class:`repro.machine.faults.FaultPlan`; deliveries over
        #: a faulted link or node raise the typed fault errors.
        self.faults = faults
        #: Optional :class:`repro.integrity.manager.IntegrityManager`
        #: arming end-to-end checksums on every delivery.  A fault plan
        #: carrying corruption faults auto-arms one — silent corruption
        #: can never run unchecked — and callers may pass their own to
        #: force checksums on a healthy machine (overhead measurement).
        if integrity is None and faults is not None and faults.corruption_faults:
            from repro.integrity.manager import IntegrityManager

            integrity = IntegrityManager()
        self.integrity = integrity
        #: Optional observer with ``on_phase(transfers, duration)``,
        #: ``on_local(elements, duration)`` and (optionally)
        #: ``on_fault(src, dst, phase, kind)`` hooks — see
        #: :class:`repro.machine.trace.TraceRecorder`.
        self.observer = None
        #: Optional :class:`repro.recovery.checkpoint.CheckpointManager`;
        #: when set, every completed communication phase offers it a
        #: consistent snapshot boundary via ``phase_completed(self)``.
        self.checkpoints = None

    # -- state ------------------------------------------------------------

    @property
    def time(self) -> float:
        """Modelled elapsed time in seconds."""
        return self.stats.time

    @property
    def phase_index(self) -> int:
        """Index the *next* communication phase will execute at.

        This is the simulator's clock for fault injection: a
        :class:`~repro.machine.faults.FaultPlan` keys fault activity by
        this counter.
        """
        return self.stats.phases

    def memory(self, node: int) -> NodeMemory:
        return self.memories[node]

    def place(self, node: int, block: Block) -> None:
        """Deposit a block into a node's memory (initial distribution)."""
        self.memories[node].put(block)

    def total_elements(self) -> int:
        return sum(mem.total_elements() for mem in self.memories)

    # -- execution ---------------------------------------------------------

    def execute_phase(
        self, messages: Sequence[Message], *, exclusive: bool = False
    ) -> float:
        """Run one communication phase; returns its duration.

        An empty phase is legal and free (algorithms may emit per-step
        phases where some steps are entirely local).  With
        ``exclusive=True`` any two messages sharing a directed link raise
        :class:`LinkConflictError` instead of serializing.
        """
        if not messages:
            return 0.0
        params = self.params
        topology = self.topology

        # Fault check first: delivering over a dead resource must fail
        # before any block moves, so an aborted phase leaves every memory
        # untouched and the planner can retry with a different schedule.
        if self.faults is not None and not self.faults.is_empty:
            phase_now = self.stats.phases
            for msg in messages:
                for node in (msg.src, msg.dst):
                    nf = self.faults.node_fault(node, phase_now)
                    if nf is not None:
                        self._notice_fault(msg.src, msg.dst, phase_now, "node")
                        raise NodeFailureError(node, phase_now, nf.kind)
                lf = self.faults.link_fault(msg.src, msg.dst, phase_now)
                if lf is not None:
                    self._notice_fault(msg.src, msg.dst, phase_now, "link")
                    raise LinkFailureError(
                        msg.src, msg.dst, phase_now, lf.kind
                    )

        # Quarantined links are permanently dead from the phase after
        # their quarantine: scheduling over one is the same pre-movement,
        # memories-untouched abort as a permanent link fault.
        integrity = self.integrity
        if integrity is not None and integrity.has_quarantined:
            phase_now = self.stats.phases
            for msg in messages:
                if integrity.is_quarantined(msg.src, msg.dst):
                    self._notice_fault(
                        msg.src, msg.dst, phase_now, "quarantine"
                    )
                    integrity.check_link(msg.src, msg.dst, phase_now)

        # Validate links and gather per-link loads.
        link_cost: dict[tuple[int, int], float] = {}
        link_msgs: dict[tuple[int, int], int] = {}
        costed: list[tuple[Message, int, int, float]] = []
        first_sender: dict[Hashable, Message] = {}
        for msg in messages:
            topology.check_link(msg.src, msg.dst)  # raises on non-links
            link = (msg.src, msg.dst)
            if link in link_cost and exclusive:
                raise LinkConflictError(
                    f"two messages use directed link {msg.src}->{msg.dst} "
                    "in the same phase"
                )
            for key in msg.keys:
                earlier = first_sender.get((msg.src, key))
                if earlier is not None:
                    raise ValueError(
                        f"block key {key!r} at node {msg.src} is carried by "
                        f"two messages of one phase: "
                        f"{earlier.src}->{earlier.dst} and "
                        f"{msg.src}->{msg.dst}"
                    )
                first_sender[(msg.src, key)] = msg
            elements = sum(
                self.memories[msg.src].get(key).size for key in msg.keys
            )
            if elements <= 0:
                raise ValueError(
                    f"message {msg.src}->{msg.dst} carries zero elements"
                )
            packets = params.packets_for(elements)
            cost = params.message_time(elements)
            if integrity is not None:
                # Checksummed (ARQ) delivery: verify at delivery, pay for
                # retransmissions on this link, quarantine repeat
                # offenders, abort the phase (memories untouched) when
                # the retransmit budget is exhausted.
                phase_now = self.stats.phases
                fault = (
                    self.faults.corruption_fault(msg.src, msg.dst, phase_now)
                    if self.faults is not None
                    else None
                )
                blocks = [self.memories[msg.src].get(key) for key in msg.keys]
                try:
                    cost += integrity.deliver(
                        msg, blocks, elements, cost, fault, phase_now,
                        self.stats,
                    )
                except Exception:
                    self._notice_fault(
                        msg.src, msg.dst, phase_now, "corruption"
                    )
                    raise
            link_cost[link] = link_cost.get(link, 0.0) + cost
            link_msgs[link] = link_msgs.get(link, 0) + 1
            costed.append((msg, elements, packets, cost))

        # Per-node / per-port serialized loads.
        send_load: dict[int, float] = {}
        recv_load: dict[int, float] = {}
        for (src, dst), cost in link_cost.items():
            send_load[src] = send_load.get(src, 0.0) + cost
            recv_load[dst] = recv_load.get(dst, 0.0) + cost

        if params.port_model is PortModel.ONE_PORT:
            duration = 0.0
            for node in set(send_load) | set(recv_load):
                duration = max(
                    duration,
                    send_load.get(node, 0.0),
                    recv_load.get(node, 0.0),
                )
        else:  # N_PORT: per directed link
            duration = max(link_cost.values())

        # Move payloads.  Pop everything first so a symmetric exchange
        # (x <-> y in the same phase) does not see the other side's
        # freshly delivered blocks.
        in_flight: list[tuple[int, Block]] = []
        for msg, _, _, _ in costed:
            for key in msg.keys:
                in_flight.append((msg.dst, self.memories[msg.src].pop(key)))
        for dst, block in in_flight:
            self.memories[dst].put(block)

        for msg, elements, packets, _ in costed:
            self.stats.record_message(msg.src, msg.dst, elements, packets)
        self.stats.record_phase(duration)
        if self.observer is not None:
            self.observer.on_phase(
                [(msg.src, msg.dst, elements) for msg, elements, _, _ in costed],
                duration,
            )
        if self.checkpoints is not None:
            self.checkpoints.phase_completed(self)
        return duration

    def _notice_fault(
        self, src: int, dst: int, phase: int, kind: str
    ) -> None:
        """Record a fault encounter in stats and (if any) the observer."""
        self.stats.record_fault(node=kind == "node")
        if self.observer is not None:
            on_fault = getattr(self.observer, "on_fault", None)
            if on_fault is not None:
                on_fault(src, dst, phase, kind)

    def idle_phase(self) -> float:
        """Advance the phase clock without moving data (zero duration).

        Fault-tolerant routing uses this when every pending transfer is
        blocked by transient faults: the round must still pass for the
        faults to heal, since fault activity is keyed by the phase index.
        """
        self.stats.record_phase(0.0)
        if self.observer is not None:
            self.observer.on_phase([], 0.0)
        if self.checkpoints is not None:
            self.checkpoints.phase_completed(self)
        return 0.0

    def execute_local(
        self,
        costs: Mapping[int, float] | float,
        elements: Mapping[int, int] | int | None = None,
    ) -> float:
        """Charge concurrent local work; returns the charged duration.

        ``costs`` is either a per-node mapping (time in seconds) or a
        single float applied as the common cost.  Nodes work in parallel,
        so the charge is the maximum.  ``elements`` optionally reports
        the element count the work touched (a total or per-node mapping)
        so metrics and traces account local work faithfully instead of
        recording zero.
        """
        if isinstance(costs, (int, float)):
            duration = float(costs)
        else:
            duration = max(costs.values(), default=0.0)
        if elements is None:
            total_elements = 0
        elif isinstance(elements, int):
            total_elements = elements
        else:
            total_elements = sum(elements.values())
        if total_elements < 0:
            raise ValueError("local work cannot touch a negative element count")
        if duration < 0:
            raise ValueError("local work cannot take negative time")
        self.stats.record_copy(total_elements, duration)
        if self.observer is not None and duration:
            self.observer.on_local(total_elements, duration)
        return duration

    def charge_copy(self, per_node_elements: Mapping[int, int]) -> float:
        """Charge a concurrent buffer-copy of the given element counts."""
        duration = 0.0
        total = 0
        for node, count in per_node_elements.items():
            if count < 0:
                raise ValueError("cannot copy a negative number of elements")
            if not 0 <= node < self.topology.num_nodes:
                raise ValueError(f"node {node} outside {self.topology.spec}")
            duration = max(duration, self.params.copy_time(count))
            total += count
        self.stats.record_copy(total, duration)
        if self.observer is not None and duration:
            self.observer.on_local(total, duration)
        return duration

    # -- checkpointing -----------------------------------------------------

    def snapshot_memories(self) -> list[dict[Hashable, Block]]:
        """Copy-on-write snapshots of every node memory, node-ordered.

        Cheap by construction: blocks are immutable in transit, so each
        snapshot is a shallow key-map copy (see
        :meth:`repro.machine.memory.NodeMemory.snapshot`).
        """
        return [mem.snapshot() for mem in self.memories]

    def restore_memories(self, snapshots: list[dict[Hashable, Block]]) -> None:
        """Reset every node memory to a :meth:`snapshot_memories` state.

        Only the memories roll back; the accumulated
        :class:`~repro.machine.metrics.TransferStats` keep counting — a
        recovery pays for the phases it wastes, it does not un-spend them.
        """
        if len(snapshots) != len(self.memories):
            raise ValueError(
                f"snapshot covers {len(snapshots)} node(s) but the machine "
                f"has {len(self.memories)}"
            )
        for mem, snap in zip(self.memories, snapshots):
            mem.restore(snap)

    # -- verification helpers ----------------------------------------------

    def holdings(self) -> dict[int, list[Hashable]]:
        """Map node -> keys currently held (for assertions in tests)."""
        return {x: mem.keys() for x, mem in enumerate(self.memories)}

    def find_block(self, key: Hashable) -> int:
        """Node currently holding ``key`` (KeyError if nowhere)."""
        for x, mem in enumerate(self.memories):
            if key in mem:
                return x
        raise KeyError(f"block {key!r} is not in any node memory")


#: Historical name: every network used to be a Boolean cube.  The alias
#: keeps two PR-generations of call sites (and subclasses such as
#: :class:`repro.plans.recorder.RecordingNetwork`) working unchanged.
CubeNetwork = EnsembleNetwork


def exchange_messages(
    pairs: Iterable[tuple[int, int]],
    keys_low_to_high: Mapping[int, Sequence[Hashable]],
    keys_high_to_low: Mapping[int, Sequence[Hashable]],
) -> list[Message]:
    """Build the symmetric message list for a set of exchange pairs.

    For each pair ``(a, b)`` with ``a < b``: ``a`` sends
    ``keys_low_to_high[a]`` to ``b`` and ``b`` sends
    ``keys_high_to_low[b]`` to ``a``.  Pairs with an empty key list on one
    side degenerate to a single send (virtual elements need not be
    communicated, §5).
    """
    messages = []
    for a, b in pairs:
        if a > b:
            a, b = b, a
        up = tuple(keys_low_to_high.get(a, ()))
        down = tuple(keys_high_to_low.get(b, ()))
        if up:
            messages.append(Message(a, b, up))
        if down:
            messages.append(Message(b, a, down))
    return messages
