"""Simulated Boolean-cube ensemble machine.

The paper's experiments ran on two 1987 machines — the Intel iPSC
(one-port, packet-oriented, 5 ms start-ups) and the Connection Machine
(bit-serial pipelined router).  Neither is available, so this subpackage
provides a deterministic link-level simulator with the exact cost model
the paper analyses: a start-up ``tau`` per packet of at most ``B_m``
elements, a transfer time ``t_c`` per element per link, optional local
copy cost ``t_copy`` per element, and a one-port or n-port, bidirectional
port model.

Algorithms express themselves as *phases* of neighbour-to-neighbour
messages; :class:`~repro.machine.engine.CubeNetwork` executes a phase,
verifies that every message crosses a real cube edge without link
conflicts, physically moves the payload blocks between node memories, and
charges time.  :mod:`repro.machine.routing` adds the store-and-forward
e-cube "routing logic" baseline that the paper measures against.
"""

from repro.machine.params import MachineParams, PortModel
from repro.machine.presets import connection_machine, custom_machine, intel_ipsc
from repro.machine.message import Block, Message
from repro.machine.memory import NodeMemory
from repro.machine.metrics import TransferStats
from repro.machine.faults import (
    DisconnectedCubeError,
    FaultError,
    FaultKind,
    FaultPlan,
    LinkFailureError,
    LinkFault,
    NodeFailureError,
    NodeFault,
    RoutingStalledError,
)
from repro.machine.trace import PhaseEvent, TraceRecorder
from repro.machine.engine import (
    CubeNetwork,
    EnsembleNetwork,
    LinkConflictError,
)
from repro.machine.routing import route_messages

__all__ = [
    "Block",
    "CubeNetwork",
    "DisconnectedCubeError",
    "EnsembleNetwork",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "LinkConflictError",
    "LinkFailureError",
    "LinkFault",
    "MachineParams",
    "Message",
    "NodeFailureError",
    "NodeFault",
    "NodeMemory",
    "PhaseEvent",
    "PortModel",
    "RoutingStalledError",
    "TraceRecorder",
    "TransferStats",
    "connection_machine",
    "custom_machine",
    "intel_ipsc",
    "route_messages",
]
