"""Execution tracing: record what a schedule actually did, phase by phase.

Attach a :class:`TraceRecorder` to a :class:`~repro.machine.engine.CubeNetwork`
(``net.observer = TraceRecorder()``) and every communication phase and
local charge is logged with its messages, sizes and duration.  The
renderer prints a per-phase timeline — which dimension carried what,
when — the view one needs when a schedule's cost surprises.

The recorder also works as a sink under an
:class:`~repro.obs.instrumentation.Instrumentation` hub, which forwards
the same engine events while additionally building spans and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cube.topology import dimension_of_edge

__all__ = ["PhaseEvent", "TraceRecorder"]


@dataclass(frozen=True)
class PhaseEvent:
    """One recorded engine event.

    ``transfers`` holds real cube-edge movements only; purely local
    events (kind ``"local"``) carry an empty transfer tuple and report
    their touched element count through ``elements`` instead — no
    synthetic self-loop entries.
    """

    index: int
    kind: str  # "comm", "local", "fault", "cache" or "recovery"
    duration: float
    transfers: tuple[tuple[int, int, int], ...]  # (src, dst, elements)
    detail: str = ""  # fault: "link"/"node"@phase; cache: event + key prefix
    elements: int = 0  # local events: elements touched off-network

    @property
    def total_elements(self) -> int:
        return self.elements + sum(t[2] for t in self.transfers)

    @property
    def dimensions(self) -> tuple[int, ...]:
        """Cube dimensions active in this phase, sorted.

        Guarded against degenerate entries: a transfer must cross a real
        cube edge to contribute, so local events (no transfers) yield
        ``()`` instead of tripping ``dimension_of_edge`` on a self-loop.
        """
        return tuple(
            sorted(
                {
                    dimension_of_edge(s, d)
                    for s, d, _ in self.transfers
                    if s != d
                }
            )
        )


@dataclass
class TraceRecorder:
    """Collects :class:`PhaseEvent`s; set as ``network.observer``."""

    events: list[PhaseEvent] = field(default_factory=list)

    # -- observer protocol (called by the engine) ---------------------------

    def on_phase(
        self, transfers: list[tuple[int, int, int]], duration: float
    ) -> None:
        self.events.append(
            PhaseEvent(len(self.events), "comm", duration, tuple(transfers))
        )

    def on_local(self, elements: int, duration: float) -> None:
        self.events.append(
            PhaseEvent(
                len(self.events), "local", duration, (), elements=elements
            )
        )

    def on_fault(self, src: int, dst: int, phase: int, kind: str) -> None:
        """A delivery hit a faulted resource (kind is "link" or "node")."""
        self.events.append(
            PhaseEvent(
                len(self.events),
                "fault",
                0.0,
                ((src, dst, 0),),
                detail=f"{kind}@phase{phase}",
            )
        )

    def on_cache(self, key: str, event: str) -> None:
        """A plan-cache lookup outcome ("hit", "miss" or "eviction")."""
        self.events.append(
            PhaseEvent(
                len(self.events),
                "cache",
                0.0,
                (),
                detail=f"{event}:{key[:12]}",
            )
        )

    def on_recovery(self, action: str, attrs: dict) -> None:
        """A recovery action ("backoff", "surgery" or "ladder")."""
        detail = action
        extra = ",".join(
            f"{k}={attrs[k]}"
            for k in ("phase", "wait", "strategy", "tier")
            if k in attrs
        )
        if extra:
            detail = f"{action}:{extra}"
        self.events.append(
            PhaseEvent(len(self.events), "recovery", 0.0, (), detail=detail)
        )

    # -- queries -------------------------------------------------------------

    @property
    def comm_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if e.kind == "comm"]

    @property
    def fault_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if e.kind == "fault"]

    @property
    def cache_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if e.kind == "cache"]

    @property
    def recovery_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if e.kind == "recovery"]

    def busiest_phase(self) -> PhaseEvent:
        if not self.events:
            raise ValueError("no events recorded")
        return max(self.events, key=lambda e: e.duration)

    def dimension_histogram(self) -> dict[int, int]:
        """Element volume carried per cube dimension over the whole run."""
        hist: dict[int, int] = {}
        for e in self.comm_events:
            for s, d, size in e.transfers:
                dim = dimension_of_edge(s, d)
                hist[dim] = hist.get(dim, 0) + size
        return hist

    def totals(self) -> dict[str, dict]:
        """Per-kind aggregates over *all* events (truncation-proof)."""
        out: dict[str, dict] = {}
        for e in self.events:
            agg = out.setdefault(
                e.kind, {"events": 0, "elements": 0, "duration": 0.0}
            )
            agg["events"] += 1
            agg["elements"] += e.total_elements
            agg["duration"] += e.duration
        return out

    def render(self, *, max_phases: int = 40) -> str:
        """A fixed-width per-phase timeline with whole-run totals.

        The footer sums every recorded event, so a truncated timeline
        (``... N more``) still summarizes the complete run.
        """
        lines = [
            f"{'phase':>5}  {'kind':5}  {'dims':>12}  {'msgs':>5}  "
            f"{'elements':>9}  {'duration':>10}"
        ]
        for e in self.events[:max_phases]:
            dims = ",".join(map(str, e.dimensions)) if e.kind == "comm" else "-"
            lines.append(
                f"{e.index:>5}  {e.kind:5}  {dims:>12}  "
                f"{len(e.transfers):>5}  {e.total_elements:>9}  "
                f"{e.duration:>10.4g}"
            )
        if len(self.events) > max_phases:
            lines.append(f"... {len(self.events) - max_phases} more")
        totals = self.totals()
        summary = "  ".join(
            f"{kind}: {agg['events']} event(s), {agg['elements']} elements, "
            f"{agg['duration']:.4g} s"
            for kind, agg in sorted(totals.items())
        )
        lines.append(f"total  {summary}" if summary else "total  (no events)")
        return "\n".join(lines)
