"""Store-and-forward e-cube routing: the "routing logic" baseline.

The paper compares its scheduled transpose algorithms against simply
handing every (source, destination, data) triple to the machine's routing
logic (Fig. 14b for the iPSC, Figs. 16-18 for the Connection Machine).
The router corrects address bits in dimension order; packets that contend
for a link queue behind each other.  This module simulates that: messages
advance one hop per round when their next directed link (and, one-port,
their endpoints) are free; the engine prices each round.

The router has no global knowledge, so its schedules are generally *not*
conflict-free — which is exactly why the scheduled algorithms win on
large cubes.

When the network carries a :class:`~repro.machine.faults.FaultPlan`, the
router becomes *fault tolerant*: a transfer whose preferred (profitable)
hop is dead detours through an alternate dimension — adaptive misrouting
bounded by a hop budget — and waits out transient faults with bounded
retries.  Livelock is impossible by construction: either some transfer
advances, a stall round passes (only while transient faults can still
heal), or a diagnosable :class:`RoutingStalledError` is raised.  The
healthy-machine behaviour is bit-for-bit the oblivious e-cube baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.integrity.errors import CorruptedDeliveryError
from repro.machine.engine import CubeNetwork
from repro.machine.faults import (
    FaultPlan,
    NodeFailureError,
    RoutingStalledError,
)
from repro.machine.message import Message
from repro.machine.params import PortModel
from repro.obs.instrumentation import instrumentation_of
from repro.topology import Topology

__all__ = ["route_messages", "RoutedTransfer", "RoutingStalledError"]


@dataclass
class RoutedTransfer:
    """A source-to-destination transfer handled by the routing logic."""

    src: int
    dst: int
    keys: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.keys, tuple):
            self.keys = tuple(self.keys)
        if not self.keys:
            raise ValueError("a transfer must carry at least one block")


class _Pending:
    """Mutable per-transfer routing state."""

    __slots__ = (
        "cur", "src", "dst", "keys", "hops", "blocked", "prev", "fallback"
    )

    def __init__(self, t: RoutedTransfer) -> None:
        self.cur = t.src
        self.src = t.src
        self.dst = t.dst
        self.keys = t.keys
        self.hops = 0
        self.blocked = 0  # consecutive rounds stuck behind a fault
        self.prev: int | None = None
        # Sticky last-resort mode: once greedy misrouting is exhausted
        # the transfer follows shortest paths of the *surviving* graph
        # (permanent faults and quarantined links removed) until
        # delivery, so progress is monotone and livelock impossible.
        self.fallback = False

    def describe(self) -> str:
        return (
            f"{self.keys!r}: {self.src}->{self.dst} at node {self.cur} "
            f"after {self.hops} hop(s), blocked {self.blocked} round(s)"
        )


def route_messages(
    network: CubeNetwork,
    transfers: Sequence[RoutedTransfer],
    *,
    ascending: bool = True,
    half_duplex: bool = True,
    max_rounds: int | None = None,
    detour_budget: int | None = None,
    retry_limit: int = 8,
) -> int:
    """Deliver all transfers via e-cube routing; returns the round count.

    Per round, a directed link carries at most one message; under the
    one-port model a node additionally sends at most one and receives at
    most one message per round — and, with ``half_duplex`` (the default),
    cannot do both: software store-and-forward routing on the iPSC fully
    occupies a node per message hop, which is a large part of why the
    scheduled algorithms beat the routing logic on big cubes (Fig. 14b).
    Scheduled exchanges, by contrast, overlap send and receive
    (bidirectional links, §2).  Hardware-pipelined routers (the
    Connection Machine preset) use the n-port model, where this does not
    apply.  Selection is FIFO over the remaining transfers, so the
    simulation is deterministic.

    Fault tolerance (active when ``network.faults`` is a non-empty
    :class:`~repro.machine.faults.FaultPlan`):

    * a transfer whose profitable hops are all dead *this round* first
      retries up to ``retry_limit`` rounds if any blockage is transient,
      then misroutes through a healthy unprofitable dimension (one hop
      away from the destination, so the detour costs two extra hops);
    * each transfer may spend at most ``detour_budget`` extra hops beyond
      its Hamming distance (default ``2 n``) on *greedy* misrouting;
      exhausting a positive budget against purely permanent blockage
      switches the transfer to shortest paths of the surviving graph
      (permanent faults and quarantined links removed), which delivers
      whenever the destination is still reachable; a zero budget forbids
      every non-minimal hop and raises :class:`RoutingStalledError`
      instead;
    * ``max_rounds`` caps the total rounds (default ``None`` = unlimited);
    * rounds in which nothing advances are *stall rounds*: the engine's
      phase clock still ticks (transient faults heal by phase index), but
      once every remaining fault is permanent a stalled round raises
      :class:`RoutingStalledError` with a per-transfer diagnosis instead
      of spinning.

    A transfer whose source or destination node is permanently dead is
    undeliverable and raises
    :class:`~repro.machine.faults.NodeFailureError` immediately.

    The routing generalizes beyond the cube through the network's
    :class:`~repro.topology.base.Topology`: "profitable" hops are the
    topology's minimal next hops (for the hypercube, exactly the
    dimension-ordered e-cube candidates), misrouting scans the remaining
    neighbours in canonical order, and the default detour budget is
    twice the topology's diameter (``2 n`` on the cube, as before).
    """
    topo: Topology = network.topology
    one_port = network.params.port_model is PortModel.ONE_PORT
    plan: FaultPlan | None = network.faults
    if plan is not None and plan.is_empty:
        plan = None
    if detour_budget is None:
        detour_budget = 2 * topo.diameter

    pending: list[_Pending] = []
    for t in transfers:
        if t.src == t.dst:
            raise ValueError(f"transfer {t.keys!r} has src == dst == {t.src}")
        if plan is not None:
            for endpoint in (t.src, t.dst):
                nf = plan.node_fault(endpoint, network.stats.phases)
                if nf is not None and nf.end is None:
                    raise NodeFailureError(
                        endpoint, network.stats.phases, nf.kind
                    )
        pending.append(_Pending(t))

    stats = network.stats
    pre_retries = stats.retries
    pre_detours = stats.detour_hops
    pre_stalls = stats.stall_phases
    rounds = 0
    known_quarantined: frozenset = frozenset()
    # dst -> {node: distance} in the surviving graph, for transfers in
    # last-resort fallback mode; recomputed when quarantine grows.
    survivor_cache: dict[int, dict[int, int]] = {}
    with instrumentation_of(network).span(
        "route", category="routing", transfers=len(pending)
    ) as route_span:
        while pending:
            if max_rounds is not None and rounds >= max_rounds:
                raise RoutingStalledError(
                    f"round cap {max_rounds} reached with "
                    f"{len(pending)} transfer(s) undelivered; first stuck: "
                    + pending[0].describe()
                )
            phase_now = network.stats.phases
            # Quarantine grows as the integrity layer convicts flaky
            # links, so the avoidance set is refreshed every round.
            quarantined = (
                network.integrity.quarantined_links()
                if network.integrity is not None
                else frozenset()
            )
            if rounds and quarantined != known_quarantined:
                # The topology changed under the transfers' feet: hops
                # spent under the stale map predict nothing, so each
                # budget re-baselines from its current position.
                # Terminates: quarantine only grows and links are
                # finite, so this happens finitely often, and between
                # changes the usual budget argument applies.
                for tr in pending:
                    tr.src = tr.cur
                    tr.hops = 0
                    tr.blocked = 0
                survivor_cache.clear()
            known_quarantined = quarantined
            used_links: set[tuple[int, int]] = set()
            busy_send: set[int] = set()
            busy_recv: set[int] = set()
            phase: list[Message] = []
            movers: list[tuple[_Pending, int]] = []
            waiting_on_fault = False
            for tr in pending:
                nxt = _next_hop(tr, topo, plan, phase_now, ascending,
                                detour_budget, retry_limit, quarantined,
                                survivor_cache)
                if nxt is None:
                    waiting_on_fault = True
                    continue
                cur = tr.cur
                if (cur, nxt) in used_links:
                    continue
                if one_port:
                    if cur in busy_send or nxt in busy_recv:
                        continue
                    if half_duplex and (cur in busy_recv or nxt in busy_send):
                        continue
                used_links.add((cur, nxt))
                busy_send.add(cur)
                busy_recv.add(nxt)
                phase.append(Message(cur, nxt, tr.keys))
                movers.append((tr, nxt))

            if phase:
                try:
                    network.execute_phase(phase)
                except CorruptedDeliveryError:
                    # The engine quarantined the offending link and
                    # aborted the phase before any block moved; the next
                    # round re-routes everything around it.  Terminates:
                    # the quarantine set strictly grows per abort and
                    # links are finite.
                    rounds += 1
                    continue
            else:
                if plan is None:  # cannot happen: first pending always advances
                    raise RoutingStalledError(
                        "router deadlock: no transfer can advance"
                    )
                if phase_now > plan.last_transient_phase():
                    raise RoutingStalledError(
                        "routing stalled: every remaining fault is permanent "
                        f"and none of {len(pending)} transfer(s) can advance; "
                        + "; ".join(tr.describe() for tr in pending[:4])
                    )
                # Stall round: let the clock tick so transient faults heal.
                network.idle_phase()
                network.stats.record_stall()
            rounds += 1

            moved = set()
            for tr, nxt in movers:
                if topo.distance(nxt, tr.dst) > topo.distance(tr.cur, tr.dst):
                    network.stats.record_detour()
                tr.prev = tr.cur
                tr.cur = nxt
                tr.hops += 1
                tr.blocked = 0
                moved.add(id(tr))
            if waiting_on_fault:
                for tr in pending:
                    if id(tr) not in moved and _is_fault_blocked(
                        tr, topo, plan, phase_now, ascending, quarantined
                    ):
                        tr.blocked += 1
                        network.stats.record_retry()
            pending = [tr for tr in pending if tr.cur != tr.dst]
        route_span.annotate(
            rounds=rounds,
            retries=stats.retries - pre_retries,
            detours=stats.detour_hops - pre_detours,
            stalls=stats.stall_phases - pre_stalls,
        )
    return rounds


def _hop_usable(
    plan: FaultPlan | None,
    cur: int,
    nxt: int,
    phase: int,
    quarantined: frozenset | set = frozenset(),
) -> tuple[bool, bool]:
    """(usable now, blocked only transiently) for the hop ``cur -> nxt``."""
    if (cur, nxt) in quarantined:
        return False, False  # quarantine is permanent: never heals
    transient = False
    if plan is not None:
        lf = plan.link_fault(cur, nxt, phase)
        if lf is not None:
            if lf.end is None:
                return False, False
            transient = True
        nf = plan.node_fault(nxt, phase)
        if nf is not None:
            if nf.end is None:
                return False, False
            transient = True
    return not transient, transient


def _is_fault_blocked(
    tr: _Pending,
    topo: Topology,
    plan: FaultPlan | None,
    phase: int,
    ascending: bool,
    quarantined: frozenset | set = frozenset(),
) -> bool:
    """Did this transfer fail to advance because of faults (vs. contention)?"""
    if plan is None and not quarantined:
        return False
    for nxt in topo.minimal_hops(tr.cur, tr.dst, ascending=ascending):
        usable, _ = _hop_usable(plan, tr.cur, nxt, phase, quarantined)
        if usable:
            return False
    return True


def _next_hop(
    tr: _Pending,
    topo: Topology,
    plan: FaultPlan | None,
    phase: int,
    ascending: bool,
    detour_budget: int,
    retry_limit: int,
    quarantined: frozenset | set = frozenset(),
    survivor_cache: dict | None = None,
) -> int | None:
    """The node this transfer should move to this round, or ``None`` to wait.

    Healthy machine: exactly the topology's first minimal hop (on the
    cube, the oblivious e-cube next hop).  Faulted machine: the first
    healthy minimal hop; failing that, bounded retries (if any blockage
    may heal) and then adaptive misrouting through a healthy
    non-minimal neighbour within the hop budget.  Skips the node we
    just came from while any alternative exists, so a misrouted
    transfer resolves the blocked link from its detour position instead
    of ping-ponging.
    """
    cur, dst = tr.cur, tr.dst
    if tr.fallback:
        return _survivor_hop(tr, topo, plan, phase, quarantined,
                             survivor_cache)
    hops = topo.minimal_hops(cur, dst, ascending=ascending)
    if plan is None and not quarantined:
        return hops[0]

    backtrack: int | None = None
    any_transient = False
    for nxt in hops:
        usable, transient = _hop_usable(plan, cur, nxt, phase, quarantined)
        any_transient = any_transient or transient
        if not usable:
            continue
        if nxt == tr.prev:
            backtrack = nxt if backtrack is None else backtrack
            continue
        return nxt
    if backtrack is not None:
        return backtrack

    # Every minimal hop is faulted right now.
    if any_transient and tr.blocked < retry_limit:
        return None  # bounded retry: wait for the fault to heal

    # Adaptive misrouting: a non-minimal hop costs at most two extra
    # hops overall (one out, one back on course), so it must fit in the
    # remaining budget.  On the cube every non-minimal hop costs
    # exactly two; on other topologies a lateral hop may cost less, so
    # two is a safe bound.
    extra_used = tr.hops + topo.distance(cur, dst) - topo.distance(tr.src, dst)
    if extra_used + 2 <= detour_budget:
        minimal = set(hops)
        backtrack = None
        for nxt in topo.neighbors(cur):
            if nxt in minimal:
                continue
            usable, _ = _hop_usable(plan, cur, nxt, phase, quarantined)
            if not usable:
                continue
            if nxt == tr.prev:
                backtrack = nxt if backtrack is None else backtrack
                continue
            return nxt
        if backtrack is not None:
            return backtrack

    if any_transient:
        return None  # out of budget or fully walled in, but it may heal
    # Permanent faults walled off every minimal hop and greedy
    # misrouting is out of budget: switch to surviving-graph shortest
    # paths for the rest of this transfer's journey.  Never reached on
    # runs the greedy strategy completes, so their schedules (and the
    # pinned baselines) are untouched.  A zero budget explicitly
    # forbids every non-minimal hop, so it forbids the fallback too.
    if detour_budget <= 0:
        raise RoutingStalledError(
            "routing stalled: no healthy hop within the detour budget "
            f"({detour_budget} extra hops) for transfer " + tr.describe()
        )
    tr.fallback = True
    return _survivor_hop(tr, topo, plan, phase, quarantined, survivor_cache)


def _survivor_distances(
    topo: Topology,
    plan: FaultPlan | None,
    quarantined: frozenset | set,
    dst: int,
) -> dict[int, int]:
    """Hop distance to ``dst`` through surviving resources only.

    The surviving graph drops quarantined links, permanently faulted
    links and permanently dead nodes (transient faults heal, so they
    stay).  BFS runs from ``dst`` over link *reversals*, giving the
    forward distance node -> dst for every node that can still reach it.
    """
    dead_links = set(quarantined)
    dead_nodes: set[int] = set()
    if plan is not None:
        dead_links.update(
            (f.src, f.dst) for f in plan.link_faults if f.end is None
        )
        dead_nodes.update(
            f.node for f in plan.node_faults if f.end is None
        )
    dist = {dst: 0}
    frontier = [dst]
    while frontier:
        nxt_frontier: list[int] = []
        for v in frontier:
            for u in topo.neighbors(v):
                if u in dist or u in dead_nodes:
                    continue
                if not topo.has_link(u, v) or (u, v) in dead_links:
                    continue
                dist[u] = dist[v] + 1
                nxt_frontier.append(u)
        frontier = nxt_frontier
    return dist


def _survivor_hop(
    tr: _Pending,
    topo: Topology,
    plan: FaultPlan | None,
    phase: int,
    quarantined: frozenset | set,
    survivor_cache: dict | None,
) -> int | None:
    """Next hop along a surviving-graph shortest path, or ``None`` to wait.

    Every candidate hop is free of permanent faults by construction, so
    a blocked round here can only be transient and waiting always
    terminates; each taken hop strictly decreases the surviving
    distance, so delivery needs at most ``num_nodes`` further moves.
    """
    if survivor_cache is None:
        survivor_cache = {}
    dist = survivor_cache.get(tr.dst)
    if dist is None:
        dist = _survivor_distances(topo, plan, quarantined, tr.dst)
        survivor_cache[tr.dst] = dist
    here = dist.get(tr.cur)
    if here is None:
        raise RoutingStalledError(
            "routing stalled: the surviving topology cannot carry "
            "transfer " + tr.describe()
        )
    for nxt in topo.neighbors(tr.cur):
        if dist.get(nxt) != here - 1:
            continue
        usable, _ = _hop_usable(plan, tr.cur, nxt, phase, quarantined)
        if usable:
            return nxt
    return None  # every shortest surviving hop is transiently blocked
