"""Store-and-forward e-cube routing: the "routing logic" baseline.

The paper compares its scheduled transpose algorithms against simply
handing every (source, destination, data) triple to the machine's routing
logic (Fig. 14b for the iPSC, Figs. 16-18 for the Connection Machine).
The router corrects address bits in dimension order; packets that contend
for a link queue behind each other.  This module simulates that: messages
advance one hop per round when their next directed link (and, one-port,
their endpoints) are free; the engine prices each round.

The router has no global knowledge, so its schedules are generally *not*
conflict-free — which is exactly why the scheduled algorithms win on
large cubes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.cube.topology import ecube_route
from repro.machine.engine import CubeNetwork
from repro.machine.message import Message
from repro.machine.params import PortModel

__all__ = ["route_messages", "RoutedTransfer"]


@dataclass
class RoutedTransfer:
    """A source-to-destination transfer handled by the routing logic."""

    src: int
    dst: int
    keys: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.keys, tuple):
            self.keys = tuple(self.keys)
        if not self.keys:
            raise ValueError("a transfer must carry at least one block")


def route_messages(
    network: CubeNetwork,
    transfers: Sequence[RoutedTransfer],
    *,
    ascending: bool = True,
    half_duplex: bool = True,
) -> int:
    """Deliver all transfers via e-cube routing; returns the round count.

    Per round, a directed link carries at most one message; under the
    one-port model a node additionally sends at most one and receives at
    most one message per round — and, with ``half_duplex`` (the default),
    cannot do both: software store-and-forward routing on the iPSC fully
    occupies a node per message hop, which is a large part of why the
    scheduled algorithms beat the routing logic on big cubes (Fig. 14b).
    Scheduled exchanges, by contrast, overlap send and receive
    (bidirectional links, §2).  Hardware-pipelined routers (the
    Connection Machine preset) use the n-port model, where this does not
    apply.  Selection is FIFO over the remaining transfers, so the
    simulation is deterministic.
    """
    n = network.params.n
    one_port = network.params.port_model is PortModel.ONE_PORT

    # (remaining route nodes, keys); route[0] is the current holder.
    pending: list[tuple[list[int], tuple[Hashable, ...]]] = []
    for t in transfers:
        if t.src == t.dst:
            raise ValueError(f"transfer {t.keys!r} has src == dst == {t.src}")
        route = ecube_route(t.src, t.dst, n, ascending=ascending)
        pending.append((route, t.keys))

    rounds = 0
    while pending:
        used_links: set[tuple[int, int]] = set()
        busy_send: set[int] = set()
        busy_recv: set[int] = set()
        phase: list[Message] = []
        advancing: list[int] = []
        for idx, (route, keys) in enumerate(pending):
            cur, nxt = route[0], route[1]
            if (cur, nxt) in used_links:
                continue
            if one_port:
                if cur in busy_send or nxt in busy_recv:
                    continue
                if half_duplex and (cur in busy_recv or nxt in busy_send):
                    continue
            used_links.add((cur, nxt))
            busy_send.add(cur)
            busy_recv.add(nxt)
            phase.append(Message(cur, nxt, keys))
            advancing.append(idx)
        if not advancing:  # cannot happen: first pending always advances
            raise RuntimeError("router deadlock")
        network.execute_phase(phase)
        rounds += 1
        still: list[tuple[list[int], tuple[Hashable, ...]]] = []
        advanced = set(advancing)
        for idx, (route, keys) in enumerate(pending):
            if idx in advanced:
                route = route[1:]
            if len(route) > 1:
                still.append((route, keys))
        pending = still
    return rounds
