"""Store-and-forward e-cube routing: the "routing logic" baseline.

The paper compares its scheduled transpose algorithms against simply
handing every (source, destination, data) triple to the machine's routing
logic (Fig. 14b for the iPSC, Figs. 16-18 for the Connection Machine).
The router corrects address bits in dimension order; packets that contend
for a link queue behind each other.  This module simulates that: messages
advance one hop per round when their next directed link (and, one-port,
their endpoints) are free; the engine prices each round.

The router has no global knowledge, so its schedules are generally *not*
conflict-free — which is exactly why the scheduled algorithms win on
large cubes.

When the network carries a :class:`~repro.machine.faults.FaultPlan`, the
router becomes *fault tolerant*: a transfer whose preferred (profitable)
hop is dead detours through an alternate dimension — adaptive misrouting
bounded by a hop budget — and waits out transient faults with bounded
retries.  Livelock is impossible by construction: either some transfer
advances, a stall round passes (only while transient faults can still
heal), or a diagnosable :class:`RoutingStalledError` is raised.  The
healthy-machine behaviour is bit-for-bit the oblivious e-cube baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.codes.bits import hamming
from repro.integrity.errors import CorruptedDeliveryError
from repro.machine.engine import CubeNetwork
from repro.machine.faults import (
    FaultPlan,
    NodeFailureError,
    RoutingStalledError,
)
from repro.machine.message import Message
from repro.machine.params import PortModel
from repro.obs.instrumentation import instrumentation_of

__all__ = ["route_messages", "RoutedTransfer", "RoutingStalledError"]


@dataclass
class RoutedTransfer:
    """A source-to-destination transfer handled by the routing logic."""

    src: int
    dst: int
    keys: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.keys, tuple):
            self.keys = tuple(self.keys)
        if not self.keys:
            raise ValueError("a transfer must carry at least one block")


class _Pending:
    """Mutable per-transfer routing state."""

    __slots__ = ("cur", "src", "dst", "keys", "hops", "blocked", "prev")

    def __init__(self, t: RoutedTransfer) -> None:
        self.cur = t.src
        self.src = t.src
        self.dst = t.dst
        self.keys = t.keys
        self.hops = 0
        self.blocked = 0  # consecutive rounds stuck behind a fault
        self.prev: int | None = None

    def describe(self) -> str:
        return (
            f"{self.keys!r}: {self.src}->{self.dst} at node {self.cur} "
            f"after {self.hops} hop(s), blocked {self.blocked} round(s)"
        )


def route_messages(
    network: CubeNetwork,
    transfers: Sequence[RoutedTransfer],
    *,
    ascending: bool = True,
    half_duplex: bool = True,
    max_rounds: int | None = None,
    detour_budget: int | None = None,
    retry_limit: int = 8,
) -> int:
    """Deliver all transfers via e-cube routing; returns the round count.

    Per round, a directed link carries at most one message; under the
    one-port model a node additionally sends at most one and receives at
    most one message per round — and, with ``half_duplex`` (the default),
    cannot do both: software store-and-forward routing on the iPSC fully
    occupies a node per message hop, which is a large part of why the
    scheduled algorithms beat the routing logic on big cubes (Fig. 14b).
    Scheduled exchanges, by contrast, overlap send and receive
    (bidirectional links, §2).  Hardware-pipelined routers (the
    Connection Machine preset) use the n-port model, where this does not
    apply.  Selection is FIFO over the remaining transfers, so the
    simulation is deterministic.

    Fault tolerance (active when ``network.faults`` is a non-empty
    :class:`~repro.machine.faults.FaultPlan`):

    * a transfer whose profitable hops are all dead *this round* first
      retries up to ``retry_limit`` rounds if any blockage is transient,
      then misroutes through a healthy unprofitable dimension (one hop
      away from the destination, so the detour costs two extra hops);
    * each transfer may spend at most ``detour_budget`` extra hops beyond
      its Hamming distance (default ``2 n``); exhausting the budget with
      no healthy profitable hop raises :class:`RoutingStalledError`;
    * ``max_rounds`` caps the total rounds (default ``None`` = unlimited);
    * rounds in which nothing advances are *stall rounds*: the engine's
      phase clock still ticks (transient faults heal by phase index), but
      once every remaining fault is permanent a stalled round raises
      :class:`RoutingStalledError` with a per-transfer diagnosis instead
      of spinning.

    A transfer whose source or destination node is permanently dead is
    undeliverable and raises
    :class:`~repro.machine.faults.NodeFailureError` immediately.
    """
    n = network.params.n
    one_port = network.params.port_model is PortModel.ONE_PORT
    plan: FaultPlan | None = network.faults
    if plan is not None and plan.is_empty:
        plan = None
    if detour_budget is None:
        detour_budget = 2 * n

    pending: list[_Pending] = []
    for t in transfers:
        if t.src == t.dst:
            raise ValueError(f"transfer {t.keys!r} has src == dst == {t.src}")
        if plan is not None:
            for endpoint in (t.src, t.dst):
                nf = plan.node_fault(endpoint, network.stats.phases)
                if nf is not None and nf.end is None:
                    raise NodeFailureError(
                        endpoint, network.stats.phases, nf.kind
                    )
        pending.append(_Pending(t))

    stats = network.stats
    pre_retries = stats.retries
    pre_detours = stats.detour_hops
    pre_stalls = stats.stall_phases
    rounds = 0
    known_quarantined: frozenset = frozenset()
    with instrumentation_of(network).span(
        "route", category="routing", transfers=len(pending)
    ) as route_span:
        while pending:
            if max_rounds is not None and rounds >= max_rounds:
                raise RoutingStalledError(
                    f"round cap {max_rounds} reached with "
                    f"{len(pending)} transfer(s) undelivered; first stuck: "
                    + pending[0].describe()
                )
            phase_now = network.stats.phases
            # Quarantine grows as the integrity layer convicts flaky
            # links, so the avoidance set is refreshed every round.
            quarantined = (
                network.integrity.quarantined_links()
                if network.integrity is not None
                else frozenset()
            )
            if rounds and quarantined != known_quarantined:
                # The topology changed under the transfers' feet: hops
                # spent under the stale map predict nothing, so each
                # budget re-baselines from its current position.
                # Terminates: quarantine only grows and links are
                # finite, so this happens finitely often, and between
                # changes the usual budget argument applies.
                for tr in pending:
                    tr.src = tr.cur
                    tr.hops = 0
                    tr.blocked = 0
            known_quarantined = quarantined
            used_links: set[tuple[int, int]] = set()
            busy_send: set[int] = set()
            busy_recv: set[int] = set()
            phase: list[Message] = []
            movers: list[tuple[_Pending, int]] = []
            waiting_on_fault = False
            for tr in pending:
                nxt = _next_hop(tr, n, plan, phase_now, ascending,
                                detour_budget, retry_limit, quarantined)
                if nxt is None:
                    waiting_on_fault = True
                    continue
                cur = tr.cur
                if (cur, nxt) in used_links:
                    continue
                if one_port:
                    if cur in busy_send or nxt in busy_recv:
                        continue
                    if half_duplex and (cur in busy_recv or nxt in busy_send):
                        continue
                used_links.add((cur, nxt))
                busy_send.add(cur)
                busy_recv.add(nxt)
                phase.append(Message(cur, nxt, tr.keys))
                movers.append((tr, nxt))

            if phase:
                try:
                    network.execute_phase(phase)
                except CorruptedDeliveryError:
                    # The engine quarantined the offending link and
                    # aborted the phase before any block moved; the next
                    # round re-routes everything around it.  Terminates:
                    # the quarantine set strictly grows per abort and
                    # links are finite.
                    rounds += 1
                    continue
            else:
                if plan is None:  # cannot happen: first pending always advances
                    raise RoutingStalledError(
                        "router deadlock: no transfer can advance"
                    )
                if phase_now > plan.last_transient_phase():
                    raise RoutingStalledError(
                        "routing stalled: every remaining fault is permanent "
                        f"and none of {len(pending)} transfer(s) can advance; "
                        + "; ".join(tr.describe() for tr in pending[:4])
                    )
                # Stall round: let the clock tick so transient faults heal.
                network.idle_phase()
                network.stats.record_stall()
            rounds += 1

            moved = set()
            for tr, nxt in movers:
                if hamming(nxt, tr.dst) > hamming(tr.cur, tr.dst):
                    network.stats.record_detour()
                tr.prev = tr.cur
                tr.cur = nxt
                tr.hops += 1
                tr.blocked = 0
                moved.add(id(tr))
            if waiting_on_fault:
                for tr in pending:
                    if id(tr) not in moved and _is_fault_blocked(
                        tr, n, plan, phase_now, ascending, quarantined
                    ):
                        tr.blocked += 1
                        network.stats.record_retry()
            pending = [tr for tr in pending if tr.cur != tr.dst]
        route_span.annotate(
            rounds=rounds,
            retries=stats.retries - pre_retries,
            detours=stats.detour_hops - pre_detours,
            stalls=stats.stall_phases - pre_stalls,
        )
    return rounds


def _profitable_dims(cur: int, dst: int, n: int, ascending: bool) -> list[int]:
    """Dimensions still differing from the destination, in e-cube order."""
    diff = cur ^ dst
    dims = [d for d in range(n) if (diff >> d) & 1]
    if not ascending:
        dims.reverse()
    return dims


def _hop_usable(
    plan: FaultPlan | None,
    cur: int,
    nxt: int,
    phase: int,
    quarantined: frozenset | set = frozenset(),
) -> tuple[bool, bool]:
    """(usable now, blocked only transiently) for the hop ``cur -> nxt``."""
    if (cur, nxt) in quarantined:
        return False, False  # quarantine is permanent: never heals
    transient = False
    if plan is not None:
        lf = plan.link_fault(cur, nxt, phase)
        if lf is not None:
            if lf.end is None:
                return False, False
            transient = True
        nf = plan.node_fault(nxt, phase)
        if nf is not None:
            if nf.end is None:
                return False, False
            transient = True
    return not transient, transient


def _is_fault_blocked(
    tr: _Pending,
    n: int,
    plan: FaultPlan | None,
    phase: int,
    ascending: bool,
    quarantined: frozenset | set = frozenset(),
) -> bool:
    """Did this transfer fail to advance because of faults (vs. contention)?"""
    if plan is None and not quarantined:
        return False
    for d in _profitable_dims(tr.cur, tr.dst, n, ascending):
        usable, _ = _hop_usable(
            plan, tr.cur, tr.cur ^ (1 << d), phase, quarantined
        )
        if usable:
            return False
    return True


def _next_hop(
    tr: _Pending,
    n: int,
    plan: FaultPlan | None,
    phase: int,
    ascending: bool,
    detour_budget: int,
    retry_limit: int,
    quarantined: frozenset | set = frozenset(),
) -> int | None:
    """The node this transfer should move to this round, or ``None`` to wait.

    Healthy machine: exactly the oblivious e-cube next hop.  Faulted
    machine: the first healthy profitable hop; failing that, bounded
    retries (if any blockage may heal) and then adaptive misrouting
    through a healthy unprofitable dimension within the hop budget.
    Skips the node we just came from while any alternative exists, so a
    misrouted transfer resolves the blocked dimension from its detour
    position instead of ping-ponging.
    """
    cur, dst = tr.cur, tr.dst
    dims = _profitable_dims(cur, dst, n, ascending)
    if plan is None and not quarantined:
        return cur ^ (1 << dims[0])

    backtrack: int | None = None
    any_transient = False
    for d in dims:
        nxt = cur ^ (1 << d)
        usable, transient = _hop_usable(plan, cur, nxt, phase, quarantined)
        any_transient = any_transient or transient
        if not usable:
            continue
        if nxt == tr.prev:
            backtrack = nxt if backtrack is None else backtrack
            continue
        return nxt
    if backtrack is not None:
        return backtrack

    # Every profitable hop is faulted right now.
    if any_transient and tr.blocked < retry_limit:
        return None  # bounded retry: wait for the fault to heal

    # Adaptive misrouting: one hop away from the destination costs two
    # extra hops overall, so it must fit in the remaining budget.
    extra_used = tr.hops + len(dims) - hamming(tr.src, dst)
    if extra_used + 2 <= detour_budget:
        backtrack = None
        for d in range(n):
            if (cur ^ dst) >> d & 1:
                continue
            nxt = cur ^ (1 << d)
            usable, _ = _hop_usable(plan, cur, nxt, phase, quarantined)
            if not usable:
                continue
            if nxt == tr.prev:
                backtrack = nxt if backtrack is None else backtrack
                continue
            return nxt
        if backtrack is not None:
            return backtrack

    if any_transient:
        return None  # out of budget or fully walled in, but it may heal
    raise RoutingStalledError(
        "routing stalled: no healthy hop within the detour budget "
        f"({detour_budget} extra hops) for transfer " + tr.describe()
    )
