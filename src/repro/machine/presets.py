"""Calibrated machine presets.

These presets carry the constants the paper states or implies; see
DESIGN.md §2 for the substitution rationale.  Times are in seconds and
sizes in *elements*, where one element is a 4-byte single-precision
number (the paper's unit throughout §8).
"""

from __future__ import annotations

from repro.machine.params import MachineParams, PortModel

__all__ = ["intel_ipsc", "connection_machine", "custom_machine", "ELEMENT_BYTES"]

#: Bytes per matrix element (single-precision float, as in the paper's §8).
ELEMENT_BYTES = 4

#: iPSC communication start-up (§2: "tau ~ 5 msec").
IPSC_TAU = 5.0e-3

#: iPSC transfer time: 1 microsecond per byte => 4 us per element (§2).
IPSC_T_C = 1.0e-6 * ELEMENT_BYTES

#: iPSC maximum packet: 1 KByte => 256 elements (§2).
IPSC_PACKET_ELEMENTS = 1024 // ELEMENT_BYTES

#: iPSC per-element copy time, from the paper's Figure 9 measurement:
#: "Copying 1024 single precision floating-point numbers (4k bytes)
#: takes about 37 milliseconds".  Pleasingly, this is *consistent* with
#: §8.1's other anchor — "the copy of 64 single-precision floating-point
#: numbers takes approximately the same time as one communication
#: start-up" — once one notes a buffered exchange copies each element
#: twice (gather into the send buffer, scatter out of the receive
#: buffer): the buffering break-even run is tau / (2 t_copy) ~ 69 ~ 64.
IPSC_T_COPY = 37.0e-3 / 1024

#: Connection Machine: bit-serial pipelined router.  The paper gives no
#: constants, only that the CM transposes about two orders of magnitude
#: faster than the iPSC; these values (50 us effective start-up, 8 us per
#: 32-bit element per link, pipelined so the start-up amortizes) land in
#: that regime while keeping the per-element term visible.
CM_TAU = 50.0e-6
CM_T_C = 8.0e-6
CM_PACKET_ELEMENTS = 1


def intel_ipsc(n: int) -> MachineParams:
    """Intel iPSC model: one-port, bidirectional, heavyweight start-ups.

    ``tau = 5 ms``, ``t_c = 4 us/element``, ``B_m = 256`` elements,
    ``t_copy = tau / 64`` (so the §8.1 optimum unbuffered threshold is 64
    elements).
    """
    return MachineParams(
        n=n,
        tau=IPSC_TAU,
        t_c=IPSC_T_C,
        packet_capacity=IPSC_PACKET_ELEMENTS,
        t_copy=IPSC_T_COPY,
        port_model=PortModel.ONE_PORT,
        pipelined=False,
        name=f"Intel iPSC ({n}-cube)",
    )


def connection_machine(n: int) -> MachineParams:
    """Connection Machine model: n-port, bit-serial, pipelined router."""
    return MachineParams(
        n=n,
        tau=CM_TAU,
        t_c=CM_T_C,
        packet_capacity=CM_PACKET_ELEMENTS,
        t_copy=0.0,
        port_model=PortModel.N_PORT,
        pipelined=True,
        name=f"Connection Machine ({n}-cube)",
    )


def custom_machine(
    n: int,
    *,
    tau: float = 1.0,
    t_c: float = 1.0,
    packet_capacity: int = 2**30,
    t_copy: float = 0.0,
    port_model: PortModel = PortModel.ONE_PORT,
    pipelined: bool = False,
    name: str = "custom",
) -> MachineParams:
    """A machine with free-form constants (unit costs by default).

    With ``tau = t_c = 1`` and unbounded packets the simulator reports
    time in abstract "start-ups + element transfers" units, which is the
    form in which the paper states its complexity results — convenient
    for tests that check a formula exactly.
    """
    return MachineParams(
        n=n,
        tau=tau,
        t_c=t_c,
        packet_capacity=packet_capacity,
        t_copy=t_copy,
        port_model=port_model,
        pipelined=pipelined,
        name=name,
    )
