"""Per-node block storage."""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.machine.message import Block

__all__ = ["NodeMemory"]


class NodeMemory:
    """The local memory of one simulated node: a keyed block store.

    Blocks are inserted exactly once (duplicate keys are an algorithm bug
    and raise), popped when sent, and deposited on receipt.  The store
    preserves insertion order, which algorithms may rely on for
    deterministic schedules.
    """

    def __init__(self, node: int) -> None:
        self.node = node
        self._blocks: dict[Hashable, Block] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._blocks

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._blocks)

    def keys(self) -> list[Hashable]:
        return list(self._blocks)

    def blocks(self) -> list[Block]:
        return list(self._blocks.values())

    def get(self, key: Hashable) -> Block:
        try:
            return self._blocks[key]
        except KeyError:
            raise KeyError(f"node {self.node} does not hold block {key!r}") from None

    def put(self, block: Block) -> None:
        if block.key in self._blocks:
            raise ValueError(
                f"node {self.node} already holds a block with key {block.key!r}"
            )
        self._blocks[block.key] = block

    def pop(self, key: Hashable) -> Block:
        try:
            return self._blocks.pop(key)
        except KeyError:
            raise KeyError(
                f"node {self.node} cannot send block {key!r} it does not hold"
            ) from None

    def replace(self, block: Block) -> None:
        """Overwrite an existing block (local rearrangement)."""
        if block.key not in self._blocks:
            raise KeyError(f"node {self.node} does not hold block {block.key!r}")
        self._blocks[block.key] = block

    def total_elements(self) -> int:
        return sum(b.size for b in self._blocks.values())

    def clear(self) -> None:
        self._blocks.clear()

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> dict[Hashable, Block]:
        """A copy-on-write snapshot of the store.

        Blocks are immutable once created (the engine moves them whole,
        never mutates them in place), so a shallow copy of the key map is
        a complete, aliasing-safe snapshot — O(blocks), no payload copy.
        """
        return dict(self._blocks)

    def restore(self, snapshot: dict[Hashable, Block]) -> None:
        """Reset the store to a :meth:`snapshot`, preserving its order."""
        self._blocks = dict(snapshot)
