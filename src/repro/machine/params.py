"""Machine cost-model parameters.

The paper's communication model (§2, "For the architecture we assume ..."):

* communication is packet oriented with overhead ``tau`` per packet,
* transmission time ``t_c`` per element,
* maximum packet size ``B_m`` elements,
* the overhead is incurred per link traversal, except on a bit-serial
  pipelined architecture (Connection Machine) where it is incurred once,
* communication is bidirectional: an exchange between neighbours costs
  the same as a single send,
* ports are either *one-port* (one send and one receive at a time,
  concurrently — the iPSC) or *n-port* (all ``n`` links concurrently).

Local data rearrangement costs ``t_copy`` per element; on the iPSC this
is significant (copying 64 elements costs about one start-up) and drives
the buffered/unbuffered trade-off of §8.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["PortModel", "MachineParams"]


class PortModel(enum.Enum):
    """How many links a node can drive concurrently."""

    ONE_PORT = "one-port"
    N_PORT = "n-port"


@dataclass(frozen=True)
class MachineParams:
    """Immutable description of a simulated Boolean-cube machine.

    Parameters
    ----------
    n:
        Cube dimension; the machine has ``N = 2**n`` nodes.
    tau:
        Communication start-up time per packet, in seconds.
    t_c:
        Transfer time per element per link, in seconds.
    packet_capacity:
        Maximum packet size ``B_m`` in elements.
    t_copy:
        Local copy time per element, in seconds (0 to ignore copy cost).
    port_model:
        ``ONE_PORT`` or ``N_PORT``.
    pipelined:
        If True, the start-up is charged once per message regardless of
        how many ``B_m`` packets it spans (bit-serial pipelining, §2).
    name:
        Human-readable label for reports.
    """

    n: int
    tau: float
    t_c: float
    packet_capacity: int
    t_copy: float = 0.0
    port_model: PortModel = PortModel.ONE_PORT
    pipelined: bool = False
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"cube dimension must be non-negative, got {self.n}")
        if self.tau < 0 or self.t_c < 0 or self.t_copy < 0:
            raise ValueError("times must be non-negative")
        if self.packet_capacity < 1:
            raise ValueError(
                f"packet capacity must be at least 1 element, got {self.packet_capacity}"
            )

    @property
    def num_procs(self) -> int:
        """Number of processors ``N = 2**n``."""
        return 1 << self.n

    def packets_for(self, elements: int) -> int:
        """Number of start-ups charged for a message of ``elements``.

        A pipelined (bit-serial) machine charges one start-up per message;
        otherwise one per ``B_m``-element packet.
        """
        if elements <= 0:
            raise ValueError(f"message must carry at least 1 element, got {elements}")
        if self.pipelined:
            return 1
        return -(-elements // self.packet_capacity)

    def message_time(self, elements: int) -> float:
        """Time for one message over one link: start-ups plus transfer."""
        return self.packets_for(elements) * self.tau + elements * self.t_c

    def copy_time(self, elements: int) -> float:
        """Time to copy ``elements`` within a node's local memory."""
        if elements < 0:
            raise ValueError("cannot copy a negative number of elements")
        return elements * self.t_copy

    def with_dimension(self, n: int) -> "MachineParams":
        """Same machine scaled to a different cube dimension."""
        return replace(self, n=n)

    def with_ports(self, port_model: PortModel) -> "MachineParams":
        """Same machine with a different port model (for ablations)."""
        return replace(self, port_model=port_model)
