"""Blocks and messages: the payload units of the simulator.

A :class:`Block` is a keyed payload living in exactly one node's memory at
a time.  Keys are arbitrary hashables chosen by the algorithms (typically
a tuple naming the matrix sub-block).  A block can carry a real NumPy
array — in which case transposes are verified end-to-end by gathering and
comparing — or be *virtual* (size only), which the benchmark harness uses
to price huge matrices without allocating them.

A :class:`Message` names the blocks (by key) that move from ``src`` to
``dst`` in one phase; the engine pops them from the source memory, so an
algorithm that tries to send data it does not hold fails immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

__all__ = ["Block", "Message"]


@dataclass
class Block:
    """A keyed payload: real (NumPy data) or virtual (size only)."""

    key: Hashable
    data: np.ndarray | None = None
    virtual_size: int | None = None

    def __post_init__(self) -> None:
        if self.data is None and self.virtual_size is None:
            raise ValueError("a block needs either data or a virtual size")
        if self.data is not None and self.virtual_size is not None:
            raise ValueError("a block cannot be both real and virtual")
        if self.data is not None:
            self.data = np.asarray(self.data)
        if self.virtual_size is not None and self.virtual_size < 0:
            raise ValueError("virtual size must be non-negative")

    @property
    def size(self) -> int:
        """Number of elements in the block."""
        if self.data is not None:
            return int(self.data.size)
        return int(self.virtual_size)

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    def split(self, parts: int) -> list["Block"]:
        """Split into ``parts`` nearly equal sub-blocks, keys extended.

        Sub-block ``i`` gets key ``(key, i)``.  Real blocks are split along
        a flattened view; virtual blocks split their size.  Used by the
        DPT/MPT algorithms, which divide a node's data over its paths.
        """
        if parts < 1:
            raise ValueError("parts must be at least 1")
        if self.is_virtual:
            base, extra = divmod(self.size, parts)
            return [
                Block((self.key, i), virtual_size=base + (1 if i < extra else 0))
                for i in range(parts)
            ]
        flat = np.asarray(self.data).reshape(-1)
        pieces = np.array_split(flat, parts)
        return [Block((self.key, i), data=piece) for i, piece in enumerate(pieces)]


@dataclass
class Message:
    """One neighbour-to-neighbour transfer of a set of blocks.

    The engine validates that ``src`` and ``dst`` are cube neighbours
    (unless it is executing a multi-hop routed schedule, which expands to
    single hops internally).
    """

    src: int
    dst: int
    keys: tuple[Hashable, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("node addresses must be non-negative")
        if self.src == self.dst:
            raise ValueError(f"message from node {self.src} to itself")
        if not isinstance(self.keys, tuple):
            self.keys = tuple(self.keys)
        if not self.keys:
            raise ValueError("a message must carry at least one block key")


def merge_messages(messages: Sequence[Message]) -> list[Message]:
    """Coalesce messages with the same (src, dst) into one.

    Sending ``k`` blocks as one message charges start-ups for the combined
    size (packets may span block boundaries after a buffer copy), whereas
    separate messages charge at least one start-up each — exactly the
    §8.1 buffered-versus-unbuffered distinction, so algorithms choose
    explicitly which they mean.
    """
    combined: dict[tuple[int, int], list[Hashable]] = {}
    order: list[tuple[int, int]] = []
    for msg in messages:
        pair = (msg.src, msg.dst)
        if pair not in combined:
            combined[pair] = []
            order.append(pair)
        combined[pair].extend(msg.keys)
    return [Message(src, dst, tuple(combined[(src, dst)])) for src, dst in order]
