"""Chaos soak harness: sweep seeded fault plans through recovery.

:func:`run_chaos` generates a family of seeded random
:class:`~repro.machine.faults.FaultPlan`s and drives each one through
the recovery machinery in up to three *modes*:

* ``replay`` — the compiled plan (captured once, with a real-payload
  ledger) runs under :func:`~repro.recovery.executor.execute_with_recovery`
  on a faulted network; the outcome must self-verify symbolically **and**
  be bit-identical to the fault-free payload run;
* ``cached`` — the serve path:
  :func:`~repro.plans.replay.replay_degraded` with ``recovery=`` and a
  shared :class:`~repro.plans.cache.PlanCache`, exercising resume-based
  serving end to end (a ladder fallback is re-verified with one live
  run on real data);
* ``live`` — a real matrix through the planner's restart ladder on a
  faulted network with checkpoint telemetry attached, verified against
  ``A.T`` element for element.

Every trial ends in one of three outcomes: ``verified`` (the transpose
invariant held), ``rejected-disconnected`` (the surviving topology
cannot carry any transpose and the system correctly refused), or
``failed`` (anything else — the one outcome the soak must never
produce).  :attr:`ChaosReport.ok` is the gate the CI chaos-smoke job
asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.machine.engine import CubeNetwork
from repro.machine.faults import (
    DisconnectedCubeError,
    FaultError,
    FaultPlan,
    RoutingStalledError,
)
from repro.machine.params import MachineParams
from repro.plans.batch import resolve_problem
from repro.plans.cache import PlanCache
from repro.plans.recorder import RecordingNetwork, synthetic_matrix
from repro.plans.replay import replay_degraded
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.executor import (
    RecoveryFailedError,
    RecoveryOutcome,
    execute_with_recovery,
    outcomes_equivalent,
)
from repro.recovery.policy import RecoveryPolicy

__all__ = ["ChaosReport", "ChaosTrial", "run_chaos"]

MODES = ("replay", "cached", "live")


@dataclass(frozen=True)
class ChaosTrial:
    """One (seed, mode) cell of the soak matrix."""

    seed: int
    mode: str  # "replay", "cached" or "live"
    outcome: str  # "verified", "rejected-disconnected" or "failed"
    #: How the run completed: clean / resume / surgery-* / ladder / "-".
    resolved: str = "-"
    fault_encounters: int = 0
    checkpoints: int = 0
    rollbacks: int = 0
    replayed_phases: int = 0
    backoff_phases: int = 0
    wasted_elements: int = 0
    #: Integrity accounting (corruption sweeps): detected corrupted
    #: deliveries, retransmissions, and links quarantined.
    corrupted_deliveries: int = 0
    retransmits: int = 0
    quarantined_links: int = 0
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "outcome": self.outcome,
            "resolved": self.resolved,
            "fault_encounters": self.fault_encounters,
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "replayed_phases": self.replayed_phases,
            "backoff_phases": self.backoff_phases,
            "wasted_elements": self.wasted_elements,
            "corrupted_deliveries": self.corrupted_deliveries,
            "retransmits": self.retransmits,
            "quarantined_links": self.quarantined_links,
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """The soak's aggregate verdict plus every trial's accounting."""

    n: int
    elements: int
    layout: str
    algorithm: str
    link_rate: float
    transient_rate: float
    window: int
    policy: str
    seeds: int
    modes: tuple[str, ...]
    corrupt_rate: float = 0.0
    corrupt_intensity: float = 0.4
    topology: str = "cube"
    trials: list[ChaosTrial] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no trial failed (rejections are correct refusals)."""
        return all(t.outcome != "failed" for t in self.trials)

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.trials:
            counts[t.outcome] = counts.get(t.outcome, 0) + 1
        return counts

    def resolution_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.trials:
            if t.outcome == "verified":
                counts[t.resolved] = counts.get(t.resolved, 0) + 1
        return counts

    def failures(self) -> list[ChaosTrial]:
        return [t for t in self.trials if t.outcome == "failed"]

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "config": {
                "n": self.n,
                "elements": self.elements,
                "layout": self.layout,
                "algorithm": self.algorithm,
                "link_rate": self.link_rate,
                "transient_rate": self.transient_rate,
                "window": self.window,
                "policy": self.policy,
                "seeds": self.seeds,
                "modes": list(self.modes),
                "corrupt_rate": self.corrupt_rate,
                "corrupt_intensity": self.corrupt_intensity,
                "topology": self.topology,
            },
            "outcomes": self.outcome_counts(),
            "resolutions": self.resolution_counts(),
            "totals": {
                "trials": len(self.trials),
                "fault_encounters": sum(
                    t.fault_encounters for t in self.trials
                ),
                "rollbacks": sum(t.rollbacks for t in self.trials),
                "replayed_phases": sum(
                    t.replayed_phases for t in self.trials
                ),
                "backoff_phases": sum(t.backoff_phases for t in self.trials),
                "wasted_elements": sum(
                    t.wasted_elements for t in self.trials
                ),
                "corrupted_deliveries": sum(
                    t.corrupted_deliveries for t in self.trials
                ),
                "retransmits": sum(t.retransmits for t in self.trials),
                "quarantined_links": sum(
                    t.quarantined_links for t in self.trials
                ),
            },
            "trials": [t.as_dict() for t in self.trials],
        }

    def summary(self) -> str:
        lines = [
            f"chaos soak: {self.seeds} seed(s) x {len(self.modes)} mode(s) "
            f"on n={self.n} ({self.topology}), {self.elements} elements, "
            f"{self.layout} layout",
            f"fault model: link_rate={self.link_rate}, "
            f"transient_rate={self.transient_rate}, window={self.window}"
            + (
                f", corrupt_rate={self.corrupt_rate}, "
                f"corrupt_intensity={self.corrupt_intensity}"
                if self.corrupt_rate
                else ""
            ),
            f"policy: {self.policy}",
        ]
        outcomes = self.outcome_counts()
        lines.append(
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        )
        corrupted = sum(t.corrupted_deliveries for t in self.trials)
        if corrupted:
            lines.append(
                f"integrity: {corrupted} corrupted delivery(ies) detected, "
                f"{sum(t.retransmits for t in self.trials)} retransmit(s), "
                f"{sum(t.quarantined_links for t in self.trials)} link(s) "
                "quarantined, 0 undetected"
            )
        resolutions = self.resolution_counts()
        if resolutions:
            lines.append(
                "resolved via: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(resolutions.items())
                )
            )
        for t in self.failures():
            lines.append(
                f"FAILED seed={t.seed} mode={t.mode}: {t.detail or '?'}"
            )
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_chaos(
    *,
    n: int = 4,
    elements: int = 256,
    layout: str = "2d",
    algorithm: str = "auto",
    seeds: int | Sequence[int] = 50,
    modes: Sequence[str] = MODES,
    link_rate: float = 0.03,
    transient_rate: float = 0.10,
    window: int = 32,
    corrupt_rate: float = 0.0,
    corrupt_intensity: float = 0.4,
    policy: RecoveryPolicy | None = None,
    params: MachineParams | None = None,
    progress: Callable[[ChaosTrial], None] | None = None,
    topology=None,
) -> ChaosReport:
    """Soak the recovery machinery over seeded random fault plans.

    ``seeds`` is either a count (seeds ``0 .. count-1``) or an explicit
    sequence.  Node failures are deliberately excluded from the sweep:
    a dead node's blocks are unrecoverable by design, so they would turn
    every hit into a correct-but-uninteresting rejection — permanent and
    transient *link* faults are where resume-based recovery lives.
    ``corrupt_rate`` > 0 turns the soak into a *corruption sweep*: each
    plan additionally draws silently corrupting links (per-delivery
    strike probability ``corrupt_intensity``), end-to-end checksums arm
    automatically, and every trial is held to the same oracle — the
    replay mode's payload-ledger comparison against the fault-free run
    means a single undetected corruption shows up as a ``failed`` trial.
    ``progress`` is called once per finished trial (CLI streaming).

    ``topology`` (spec string or :class:`~repro.topology.base.Topology`)
    soaks a non-cube interconnect.  Only ``live`` mode is available off
    the cube: ``replay`` and ``cached`` exercise checkpoint surgery and
    resume-based serving, which rewrite cube schedules specifically.
    """
    from repro.topology import parse_topology

    for mode in modes:
        if mode not in MODES:
            raise ValueError(
                f"unknown chaos mode {mode!r}; choose from {MODES}"
            )
    topo = parse_topology(topology, n)
    on_cube = topo.name == "cube"
    if not on_cube:
        if topo.num_nodes != 1 << n:
            raise ValueError(
                f"topology {topo.spec!r} has {topo.num_nodes} nodes but the "
                f"soak needs 2^{n} = {1 << n}"
            )
        off_cube = [m for m in modes if m != "live"]
        if off_cube:
            raise ValueError(
                f"chaos mode(s) {', '.join(off_cube)} need a Boolean cube "
                f"(checkpoint surgery is cube-specific); on topology "
                f"{topo.spec!r} run with modes=('live',)"
            )
    if isinstance(seeds, int):
        seed_list = list(range(seeds))
    else:
        seed_list = list(seeds)
    if policy is None:
        policy = RecoveryPolicy()
    if params is None:
        from repro.machine.presets import connection_machine

        params = connection_machine(n)
    before, after = resolve_problem(n, elements, layout)
    target = after

    # One clean capture with a real-payload ledger feeds every replay
    # trial; the clean outcome is the bit-identity reference.  Only
    # the replay mode needs it.
    plan = payloads = clean_outcome = None
    if "replay" in modes:
        from repro.transpose.planner import default_after_layout, transpose

        recorder = RecordingNetwork(params, record_payloads=True)
        matrix = synthetic_matrix(before)
        clean_result = transpose(
            recorder, matrix, target, algorithm=algorithm
        )
        plan = recorder.compile(
            algorithm=clean_result.algorithm,
            before=before,
            after=target
            if target is not None
            else default_after_layout(before),
            requested=algorithm,
        )
        payloads = recorder.payloads
        clean_outcome = execute_with_recovery(
            plan, CubeNetwork(params), policy=policy, payloads=payloads
        )

    cache = PlanCache(capacity=32)
    report = ChaosReport(
        n=n,
        elements=elements,
        layout=layout,
        algorithm=algorithm,
        link_rate=link_rate,
        transient_rate=transient_rate,
        window=window,
        policy=policy.describe(),
        seeds=len(seed_list),
        modes=tuple(modes),
        corrupt_rate=corrupt_rate,
        corrupt_intensity=corrupt_intensity,
        topology=topo.spec,
    )
    for seed in seed_list:
        faults = FaultPlan.random(
            n,
            seed=seed,
            link_rate=link_rate,
            transient_rate=transient_rate,
            window=window,
            corrupt_rate=corrupt_rate,
            corrupt_intensity=corrupt_intensity,
            topology=None if on_cube else topo,
        )
        for mode in modes:
            if mode == "replay":
                trial = _replay_trial(
                    seed, plan, payloads, clean_outcome, params, faults,
                    policy, before, target, algorithm,
                )
            elif mode == "cached":
                trial = _cached_trial(
                    seed, params, before, target, faults, algorithm,
                    cache, policy,
                )
            else:
                trial = _live_trial(
                    seed, params, before, target, faults, algorithm, policy,
                    topo,
                )
            report.trials.append(trial)
            if progress is not None:
                progress(trial)
    return report


def _from_report(
    seed: int, mode: str, outcome: str, rep, detail="", stats=None
) -> ChaosTrial:
    return ChaosTrial(
        seed=seed,
        mode=mode,
        outcome=outcome,
        resolved=rep.resolved if rep is not None else "-",
        fault_encounters=rep.fault_encounters if rep is not None else 0,
        checkpoints=rep.checkpoints_taken if rep is not None else 0,
        rollbacks=rep.rollbacks if rep is not None else 0,
        replayed_phases=rep.replayed_phases if rep is not None else 0,
        backoff_phases=rep.backoff_phases if rep is not None else 0,
        wasted_elements=rep.wasted_elements if rep is not None else 0,
        corrupted_deliveries=(
            stats.integrity_corrupted_deliveries if stats is not None else 0
        ),
        retransmits=stats.integrity_retransmits if stats is not None else 0,
        quarantined_links=(
            stats.integrity_quarantined_links if stats is not None else 0
        ),
        detail=detail,
    )


def _live_verifies(
    params, before, after, faults, algorithm, policy, topology=None
) -> tuple[bool, str, object]:
    """One direct fault-tolerant run on real data; ``(ok, detail, stats)``."""
    from repro.transpose.planner import transpose

    matrix = synthetic_matrix(before)
    original = matrix.to_global()
    network = CubeNetwork(params, faults=faults, topology=topology)
    network.checkpoints = CheckpointManager(
        every=policy.checkpoint_every, retain=policy.max_checkpoints
    )
    try:
        result = transpose(network, matrix, after, algorithm=algorithm)
    except DisconnectedCubeError:
        return True, "rejected-disconnected", network.stats
    except (FaultError, RoutingStalledError) as exc:
        return False, f"{type(exc).__name__}: {exc}", network.stats
    if result.verify_against(original):
        detail = "ladder" if result.fallbacks else "clean"
        return True, detail, network.stats
    return False, "transpose invariant violated", network.stats


def _replay_trial(
    seed, plan, payloads, clean_outcome: RecoveryOutcome, params, faults,
    policy, before, after, algorithm,
) -> ChaosTrial:
    if not faults.surviving_connected():
        return ChaosTrial(seed, "replay", "rejected-disconnected")
    network = CubeNetwork(params, faults=faults)
    try:
        outcome = execute_with_recovery(
            plan, network, policy=policy, payloads=payloads
        )
    except RecoveryFailedError as exc:
        # Recovery gave up within budget; the ladder is the documented
        # last resort — run it live and hold it to the same invariant.
        ok, detail, live_stats = _live_verifies(
            params, before, after, faults, algorithm, policy
        )
        rep = exc.report
        rep.resolved = "ladder"
        if not ok:
            return _from_report(
                seed, "replay", "failed", rep, detail, stats=live_stats
            )
        return _from_report(
            seed, "replay", "verified", rep, f"ladder: {detail}",
            stats=live_stats,
        )
    if not outcome.verified:
        return _from_report(
            seed, "replay", "failed", outcome.report,
            "final-state verification failed", stats=network.stats,
        )
    if not outcomes_equivalent(outcome, clean_outcome):
        return _from_report(
            seed, "replay", "failed", outcome.report,
            "recovered payloads differ from fault-free run",
            stats=network.stats,
        )
    return _from_report(
        seed, "replay", "verified", outcome.report, stats=network.stats
    )


def _cached_trial(
    seed, params, before, after, faults, algorithm, cache, policy
) -> ChaosTrial:
    if not faults.surviving_connected():
        return ChaosTrial(seed, "cached", "rejected-disconnected")
    try:
        served = replay_degraded(
            params,
            before,
            after,
            faults=faults,
            algorithm=algorithm,
            cache=cache,
            recovery=policy,
        )
    except DisconnectedCubeError:
        return ChaosTrial(seed, "cached", "rejected-disconnected")
    except (FaultError, RoutingStalledError) as exc:
        return ChaosTrial(
            seed, "cached", "failed", detail=f"{type(exc).__name__}: {exc}"
        )
    rep = served.recovery
    if served.verified:
        return _from_report(
            seed, "cached", "verified", rep, stats=served.stats
        )
    # Ladder fallback ran virtually; re-verify the same scenario on real
    # data so "served" always means "would have been correct".
    ok, detail, live_stats = _live_verifies(
        params, before, after, faults, algorithm, policy
    )
    if ok:
        return _from_report(
            seed, "cached", "verified", rep, f"ladder: {detail}",
            stats=live_stats,
        )
    return _from_report(
        seed, "cached", "failed", rep, detail, stats=live_stats
    )


def _live_trial(
    seed, params, before, after, faults, algorithm, policy, topology=None
) -> ChaosTrial:
    ok, detail, stats = _live_verifies(
        params, before, after, faults, algorithm, policy, topology
    )
    if ok and detail == "rejected-disconnected":
        return ChaosTrial(seed, "live", "rejected-disconnected")
    return ChaosTrial(
        seed=seed,
        mode="live",
        outcome="verified" if ok else "failed",
        resolved=detail if ok else "-",
        fault_encounters=stats.fault_events,
        checkpoints=stats.checkpoints,
        rollbacks=stats.rollbacks,
        replayed_phases=stats.replayed_phases,
        backoff_phases=stats.stall_phases,
        wasted_elements=stats.wasted_elements,
        corrupted_deliveries=stats.integrity_corrupted_deliveries,
        retransmits=stats.integrity_retransmits,
        quarantined_links=stats.integrity_quarantined_links,
        detail="" if ok else detail,
    )
