"""Phase-granular checkpoints of the simulated machine.

The engine's pre-pop fault check (see ``docs/fault_model.md`` §2) means
an aborted phase leaves every node memory untouched — so the boundary
*between* communication phases is always a consistent cut.  A
:class:`Checkpoint` captures that cut: copy-on-write snapshots of every
node memory (blocks are immutable in transit, so a snapshot is a shallow
key-map copy per node) plus the executor cursor state needed to resume a
:class:`~repro.plans.ir.CompiledPlan` from it.

:class:`CheckpointManager` owns cadence and retention.  It serves two
modes:

* **executor mode** — the recovery executor calls :meth:`take` /
  :meth:`maybe_take` at op boundaries with its full cursor state, and
  :meth:`rollback` to restore the newest snapshot;
* **live mode** — attached as ``network.checkpoints``, the engine calls
  :meth:`phase_completed` after every phase, snapshotting on cadence.
  Live runs cannot resume (the control flow is Python code, not a
  plan), but the snapshots price checkpoint overhead honestly and feed
  the ``checkpoints`` counter the baseline gate watches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.integrity.checksum import memories_digest
from repro.integrity.errors import CorruptedCheckpointError

__all__ = ["Checkpoint", "CheckpointManager"]


@dataclass
class Checkpoint:
    """One consistent snapshot: machine memories + executor cursor."""

    #: Index of the next plan op to execute when resuming from here.
    cursor: int
    #: XOR relabeling in force at the snapshot (RemapOps folded so far).
    mask: int
    #: Engine phase index at snapshot time (for reporting only; the
    #: phase clock never rolls back — faults stay keyed to real time).
    phase_index: int
    #: Modelled time at snapshot time (for reporting only).
    time: float
    #: Per-node shallow copies of the block stores, node-ordered.
    memories: list[dict]
    #: Payload-ledger consumption counts (real-data replay only).
    consumed: dict[Hashable, int] = field(default_factory=dict)
    #: Blocks collected (popped out) before the snapshot: key -> (node, block).
    collected: dict[Hashable, tuple] = field(default_factory=dict)
    #: Integrity seal: :func:`~repro.integrity.checksum.memories_digest`
    #: of ``memories`` at capture time, validated before any rollback.
    digest: int | None = None

    @property
    def resident_elements(self) -> int:
        return sum(
            block.size for mem in self.memories for block in mem.values()
        )

    def validate(self) -> bool:
        """Does the snapshot still match its capture-time digest?

        Unsealed checkpoints (``digest=None``, e.g. deserialized from an
        older format) are trusted for compatibility.
        """
        if self.digest is None:
            return True
        return memories_digest(self.memories) == self.digest


class CheckpointManager:
    """Takes, retains and restores :class:`Checkpoint` objects.

    ``every`` is the cadence in communication phases; ``retain`` bounds
    the snapshot deque (oldest dropped first).  Each snapshot increments
    the network's ``checkpoints`` counter, so checkpoint overhead is
    visible to the baseline gate.
    """

    def __init__(self, *, every: int = 8, retain: int = 4) -> None:
        if every < 1:
            raise ValueError("checkpoint cadence must be at least 1 phase")
        if retain < 1:
            raise ValueError("at least one checkpoint must be retained")
        self.every = every
        self.retain = retain
        self._snapshots: deque[Checkpoint] = deque(maxlen=retain)
        self._phases_since = 0

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def latest(self) -> Checkpoint | None:
        return self._snapshots[-1] if self._snapshots else None

    # -- executor mode ------------------------------------------------------

    def take(
        self,
        network,
        *,
        cursor: int = 0,
        mask: int = 0,
        consumed: dict | None = None,
        collected: dict | None = None,
    ) -> Checkpoint:
        """Snapshot unconditionally and reset the cadence counter."""
        memories = network.snapshot_memories()
        ckpt = Checkpoint(
            cursor=cursor,
            mask=mask,
            phase_index=network.phase_index,
            time=network.stats.time,
            memories=memories,
            consumed=dict(consumed or {}),
            collected=dict(collected or {}),
            digest=memories_digest(memories),
        )
        self._snapshots.append(ckpt)
        self._phases_since = 0
        network.stats.record_checkpoint()
        return ckpt

    def maybe_take(
        self,
        network,
        *,
        cursor: int,
        mask: int = 0,
        consumed: dict | None = None,
        collected: dict | None = None,
    ) -> Checkpoint | None:
        """Count one completed phase; snapshot when the cadence is due."""
        self._phases_since += 1
        if self._phases_since < self.every:
            return None
        return self.take(
            network,
            cursor=cursor,
            mask=mask,
            consumed=consumed,
            collected=collected,
        )

    def rollback(self, network) -> Checkpoint:
        """Restore the newest *valid* snapshot's memories.

        Every candidate is digest-validated first: a snapshot whose
        memories no longer match their capture-time seal is discarded
        (never resumed from) and the next older one is tried.  When no
        retained snapshot validates,
        :class:`~repro.integrity.errors.CorruptedCheckpointError` is
        raised — recovery fails loudly rather than resuming from damaged
        state.  The restored checkpoint stays retained (the same
        snapshot can absorb several faults); stats accounting is the
        caller's job — it knows how many phases the resume will replay.
        """
        if not self._snapshots:
            raise RuntimeError("no checkpoint retained; cannot roll back")
        discarded = 0
        while self._snapshots:
            ckpt = self._snapshots[-1]
            if ckpt.validate():
                network.restore_memories(ckpt.memories)
                self._phases_since = 0
                return ckpt
            self._snapshots.pop()
            discarded += 1
        raise CorruptedCheckpointError(network.phase_index, discarded)

    def reset(self) -> None:
        """Drop every snapshot (plan surgery invalidates old cursors)."""
        self._snapshots.clear()
        self._phases_since = 0

    # -- live mode (engine hook) --------------------------------------------

    def phase_completed(self, network) -> None:
        """Engine hook: called after every completed phase.

        Snapshots on cadence with no cursor state — live algorithms are
        Python control flow, so these snapshots support telemetry and
        wasted-work accounting, not mid-plan resume.
        """
        self.maybe_take(network, cursor=network.phase_index)
