"""Checkpointed execution and mid-run recovery.

This package turns fault handling from *restart-based* (the PR 1
degradation ladder re-plans from scratch when a schedule aborts) into
*resume-based*:

* :mod:`repro.recovery.checkpoint` — phase-granular copy-on-write
  snapshots of the node memories, taken on a configurable cadence with
  a bounded retention window;
* :mod:`repro.recovery.policy` — the knobs: cadence, retention,
  rollback and backoff budgets, surgery strategy gates;
* :mod:`repro.recovery.surgery` — rewriting the *remaining* ops of a
  compiled plan around permanently dead links (per-message detour
  expansion, or XOR relabeling of the surviving schedule), validated
  symbolically before use;
* :mod:`repro.recovery.executor` — the resume loop itself: run,
  checkpoint, catch the typed fault, back off transients / repair
  permanents, roll back, continue — with full accounting;
* :mod:`repro.recovery.chaos` — the soak harness sweeping seeded
  random fault plans through live runs, recovery replays and cached
  serves, holding every outcome to the transpose invariant.
"""

from repro.integrity.errors import CorruptedCheckpointError
from repro.recovery.chaos import ChaosReport, ChaosTrial, run_chaos
from repro.recovery.checkpoint import Checkpoint, CheckpointManager
from repro.recovery.executor import (
    RecoveryFailedError,
    RecoveryOutcome,
    RecoveryReport,
    execute_with_recovery,
    outcomes_equivalent,
)
from repro.recovery.policy import RecoveryPolicy
from repro.recovery.surgery import (
    SurgeryError,
    SurgeryResult,
    physicalize,
    plan_surgery,
)

__all__ = [
    "ChaosReport",
    "ChaosTrial",
    "Checkpoint",
    "CheckpointManager",
    "CorruptedCheckpointError",
    "RecoveryFailedError",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RecoveryReport",
    "SurgeryError",
    "SurgeryResult",
    "execute_with_recovery",
    "outcomes_equivalent",
    "physicalize",
    "plan_surgery",
    "run_chaos",
]
