"""Plan surgery: rewrite the remaining schedule around dead resources.

When a *permanent* fault aborts a replayed :class:`~repro.plans.ir.CompiledPlan`,
restarting from scratch throws away every completed phase.  Surgery
instead rewrites only the **remaining** op suffix so it avoids the dead
links, keeping all completed work.  Two rewrite strategies compete:

**Detour expansion**
    Each message crossing a dead link is replaced by a shortest healthy
    multi-hop path (BFS over the surviving directed cube).  Unaffected
    messages of the phase run unchanged (a subset of an edge-disjoint
    phase is still edge-disjoint, so the ``exclusive`` check is kept);
    hop ``j`` of every detoured message is merged into one follow-up
    phase.  Cost: the extra element-hops of the longer paths.

**XOR relabeling**
    A cube automorphism ``x -> x ^ r`` maps the remaining schedule onto
    a translate that misses the dead links entirely (COSTA-style
    processor relabeling; the IR's ``RemapOp`` exists for exactly this).
    Resident blocks migrate to their images (one full-exchange phase per
    set bit of ``r``), the translated schedule runs, and blocks migrate
    back before the original collects.  Cost: ``2 * popcount(r)`` extra
    hops per resident element.  Requires no pending placements, all
    collects after the last phase, and no dead nodes.

Every candidate is **validated symbolically** before being returned
(:mod:`repro.plans.symbolic`): it must produce exactly the original
suffix's final key→node state while provably never crossing a dead link
or touching a dead node.  The cheaper valid candidate wins; if neither
validates, :class:`SurgeryError` tells the caller to fall back to the
degradation ladder.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.cube.topology import dimension_of_edge
from repro.plans.ir import (
    CollectOp,
    CopyOp,
    IdleOp,
    LocalOp,
    PhaseOp,
    PlaceOp,
    PlanMessage,
    PlanOp,
    RemapOp,
)
from repro.plans.symbolic import SymbolicError, simulate_ops

__all__ = ["SurgeryError", "SurgeryResult", "physicalize", "plan_surgery"]


class SurgeryError(RuntimeError):
    """No validated rewrite of the remaining schedule exists."""


@dataclass(frozen=True)
class SurgeryResult:
    """A validated rewrite of the remaining op suffix."""

    ops: tuple[PlanOp, ...]
    strategy: str  # "detour" or "relabel"
    #: Extra element-hops the rewrite adds over the original suffix.
    added_element_hops: int
    detoured_messages: int = 0
    relabel_mask: int = 0


def _xor_node_op(op: PlanOp, mask: int) -> PlanOp:
    """Rewrite one op's node ids by ``id ^ mask`` (no RemapOps here)."""
    if mask == 0 or isinstance(op, IdleOp):
        return op
    if isinstance(op, PhaseOp):
        return PhaseOp(
            tuple(
                PlanMessage(m.src ^ mask, m.dst ^ mask, m.elements, m.keys)
                for m in op.messages
            ),
            op.exclusive,
        )
    if isinstance(op, PlaceOp):
        return PlaceOp(op.node ^ mask, op.size, op.key)
    if isinstance(op, CollectOp):
        return CollectOp(op.node ^ mask, op.key)
    if isinstance(op, CopyOp):
        return CopyOp(
            tuple(sorted((n ^ mask, c) for n, c in op.per_node))
        )
    if isinstance(op, LocalOp):
        costs = (
            op.costs
            if isinstance(op.costs, float)
            else tuple(sorted((n ^ mask, c) for n, c in op.costs))
        )
        elements = (
            op.elements
            if op.elements is None or isinstance(op.elements, int)
            else tuple(sorted((n ^ mask, c) for n, c in op.elements))
        )
        return LocalOp(costs, elements)
    raise SurgeryError(f"cannot relabel op {op!r}")


def physicalize(ops: Sequence[PlanOp], mask: int = 0) -> tuple[PlanOp, ...]:
    """Fold ``RemapOp``s into explicit node ids.

    Returns an equivalent op sequence with no ``RemapOp`` and every node
    id physical — the coordinate system surgery reasons in.  ``mask`` is
    the relabeling already in force when the sequence starts.
    """
    out: list[PlanOp] = []
    for op in ops:
        if isinstance(op, RemapOp):
            mask ^= op.mask
            continue
        out.append(_xor_node_op(op, mask))
    return tuple(out)


def _bfs_path(
    src: int,
    dst: int,
    n: int,
    dead_links: frozenset[tuple[int, int]] | set,
    dead_nodes: frozenset[int] | set,
) -> list[int] | None:
    """Shortest healthy directed path ``src -> dst`` (node list), or None."""
    if src in dead_nodes or dst in dead_nodes:
        return None
    parent: dict[int, int] = {src: src}
    frontier: deque[int] = deque((src,))
    while frontier:
        x = frontier.popleft()
        if x == dst:
            path = [x]
            while path[-1] != src:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for d in range(n):
            y = x ^ (1 << d)
            if y in parent or y in dead_nodes or (x, y) in dead_links:
                continue
            parent[y] = x
            frontier.append(y)
    return None


def _detour_candidate(
    ops: Sequence[PlanOp],
    *,
    n: int,
    dead_links: set,
    dead_nodes: set,
) -> SurgeryResult:
    """Expand every dead-link message into a healthy multi-hop path."""
    out: list[PlanOp] = []
    added = 0
    detoured = 0
    for op in ops:
        if not isinstance(op, PhaseOp):
            if isinstance(op, (PlaceOp, CollectOp)) and (
                op.node in dead_nodes
            ):
                raise SurgeryError(
                    f"op {op!r} targets permanently dead node {op.node}; "
                    "no rewrite can reach it"
                )
            out.append(op)
            continue
        kept: list[PlanMessage] = []
        paths: list[tuple[PlanMessage, list[int]]] = []
        for m in op.messages:
            blocked = (
                (m.src, m.dst) in dead_links
                or m.src in dead_nodes
                or m.dst in dead_nodes
            )
            if not blocked:
                kept.append(m)
                continue
            path = _bfs_path(m.src, m.dst, n, dead_links, dead_nodes)
            if path is None:
                raise SurgeryError(
                    f"no healthy path from {m.src} to {m.dst}; the "
                    "surviving cube cannot carry this message"
                )
            paths.append((m, path))
            added += (len(path) - 2) * m.elements
            detoured += 1
        if not paths:
            out.append(op)
            continue
        if kept:
            out.append(PhaseOp(tuple(kept), op.exclusive))
        depth = max(len(path) - 1 for _, path in paths)
        for j in range(depth):
            hop = tuple(
                PlanMessage(path[j], path[j + 1], m.elements, m.keys)
                for m, path in paths
                if j < len(path) - 1
            )
            out.append(PhaseOp(hop, False))
    return SurgeryResult(
        ops=tuple(out),
        strategy="detour",
        added_element_hops=added,
        detoured_messages=detoured,
    )


def _migration_phases(
    holdings: Mapping[Hashable, int],
    mask: int,
    sizes: Mapping[Hashable, int],
    n: int,
) -> tuple[list[PhaseOp], int]:
    """Phases moving every resident block from ``x`` to ``x ^ mask``.

    One full-exchange phase per set bit of ``mask``; every directed link
    of the dimension carries at most one message, so the phases are
    exclusive.  Returns ``(phases, element_hops)``.
    """
    position = dict(holdings)
    phases: list[PhaseOp] = []
    hops = 0
    for d in range(n):
        bit = 1 << d
        if not mask & bit:
            continue
        by_src: dict[int, list[Hashable]] = {}
        for key, node in position.items():
            by_src.setdefault(node, []).append(key)
        messages = []
        for src, keys in sorted(by_src.items()):
            elements = sum(sizes[k] for k in keys)
            messages.append(
                PlanMessage(src, src ^ bit, elements, tuple(keys))
            )
            hops += elements
            for k in keys:
                position[k] = src ^ bit
        if messages:
            phases.append(PhaseOp(tuple(messages), True))
    return phases, hops


def _relabel_candidate(
    ops: Sequence[PlanOp],
    *,
    n: int,
    dead_links: set,
    dead_nodes: set,
    holdings: Mapping[Hashable, int],
    sizes: Mapping[Hashable, int],
) -> SurgeryResult:
    """Translate the remaining phases by a healthy cube automorphism."""
    if dead_nodes:
        raise SurgeryError(
            "relabeling cannot route around dead nodes (every node is its "
            "own image's pre-image)"
        )
    if any(isinstance(op, PlaceOp) for op in ops):
        raise SurgeryError(
            "relabeling requires no pending placements in the remaining "
            "schedule"
        )
    phase_idx = [i for i, op in enumerate(ops) if isinstance(op, PhaseOp)]
    if not phase_idx:
        raise SurgeryError("no remaining phases to relabel")
    collect_idx = [
        i for i, op in enumerate(ops) if isinstance(op, CollectOp)
    ]
    if collect_idx and min(collect_idx) < max(phase_idx):
        raise SurgeryError(
            "relabeling requires every collect to follow the last phase"
        )
    split = max(phase_idx) + 1
    body, tail = ops[:split], ops[split:]
    used = {
        (m.src, m.dst)
        for op in body
        if isinstance(op, PhaseOp)
        for m in op.messages
    }
    dead_dims = {dimension_of_edge(a, b) for a, b in dead_links}

    best: SurgeryResult | None = None
    for r in sorted(range(1, 1 << n), key=lambda x: (bin(x).count("1"), x)):
        if any(r & (1 << d) for d in dead_dims):
            continue  # migration sweeps whole dimensions; they must be clean
        if any((a ^ r, b ^ r) in dead_links for a, b in used):
            continue
        mig_out, hops_out = _migration_phases(holdings, r, sizes, n)
        relabeled = [_xor_node_op(op, r) for op in body]
        try:
            state = simulate_ops(
                [*mig_out, *relabeled], holdings, n=n
            )
        except SymbolicError as exc:
            raise SurgeryError(
                f"relabeling by {r:#x} does not simulate: {exc}"
            ) from exc
        mig_back, hops_back = _migration_phases(
            state.residual, r, sizes, n
        )
        best = SurgeryResult(
            ops=(*mig_out, *relabeled, *mig_back, *tail),
            strategy="relabel",
            added_element_hops=hops_out + hops_back,
            relabel_mask=r,
        )
        break  # masks are popcount-ordered; the first hit is cheapest
    if best is None:
        raise SurgeryError(
            "no XOR relabeling avoids the dead links (every translate of "
            "the remaining schedule is blocked)"
        )
    return best


def plan_surgery(
    ops: Sequence[PlanOp],
    *,
    n: int,
    dead_links: set,
    dead_nodes: set,
    holdings: Mapping[Hashable, int],
    sizes: Mapping[Hashable, int],
    allow_relabel: bool = True,
) -> SurgeryResult:
    """Rewrite the remaining op suffix to avoid every dead resource.

    ``ops`` must be *physicalized* (no ``RemapOp``; see
    :func:`physicalize`), ``holdings`` maps every resident block key to
    its physical node at the resume point, ``sizes`` gives each key's
    element count.  Both candidate strategies are built, symbolically
    validated against the original suffix's final state (same residual
    key→node map, same collected map, provably no dead-resource
    crossing), and the cheaper valid one — by added element-hops — is
    returned.  Raises :class:`SurgeryError` when no candidate validates.
    """
    for key, node in holdings.items():
        if node in dead_nodes:
            raise SurgeryError(
                f"block {key!r} is resident at permanently dead node "
                f"{node}; its data is unreachable"
            )
    ops = tuple(ops)
    if any(isinstance(op, RemapOp) for op in ops):
        raise SurgeryError("surgery requires a physicalized op sequence")
    try:
        reference = simulate_ops(ops, holdings, n=n)
    except SymbolicError as exc:
        raise SurgeryError(
            f"the original remaining schedule does not simulate: {exc}"
        ) from exc

    candidates: list[SurgeryResult] = []
    errors: list[str] = []
    builders = [("detour", _detour_candidate)]
    if allow_relabel:
        builders.append(
            (
                "relabel",
                lambda o, **kw: _relabel_candidate(
                    o, holdings=holdings, sizes=sizes, **kw
                ),
            )
        )
    for name, build in builders:
        try:
            candidate = build(
                ops, n=n, dead_links=dead_links, dead_nodes=dead_nodes
            )
            outcome = simulate_ops(
                candidate.ops,
                holdings,
                n=n,
                forbidden_links=dead_links,
                forbidden_nodes=dead_nodes,
            )
        except (SurgeryError, SymbolicError) as exc:
            errors.append(f"{name}: {exc}")
            continue
        if outcome != reference:
            errors.append(
                f"{name}: rewritten suffix reaches a different final state"
            )
            continue
        candidates.append(candidate)
    if not candidates:
        raise SurgeryError(
            "no rewrite of the remaining schedule validates: "
            + "; ".join(errors)
        )
    return min(candidates, key=lambda c: c.added_element_hops)
