"""Recovery policy: the knobs of checkpoint-and-resume execution.

A :class:`RecoveryPolicy` bundles every tunable of the recovery executor
(:mod:`repro.recovery.executor`): checkpoint cadence and retention,
rollback and backoff budgets, and which repair strategies are on the
table.  Policies are immutable so one policy object can serve a whole
batch or chaos sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Immutable configuration of the recovery executor.

    ``checkpoint_every`` trades snapshot overhead against replay length:
    a fault costs at most ``checkpoint_every - 1`` replayed phases plus
    the aborted one (see ``docs/recovery.md`` for the trade-off curve).
    ``max_checkpoints`` bounds retained snapshots (older ones are
    dropped), ``max_rollbacks`` bounds total rollbacks per run so a
    pathological fault plan terminates in :class:`RecoveryFailedError`
    rather than looping, and ``max_backoff_phases`` caps how many idle
    phases a single transient wait may insert.
    """

    checkpoint_every: int = 8
    max_checkpoints: int = 4
    max_rollbacks: int = 32
    max_backoff_phases: int = 4096
    allow_surgery: bool = True
    allow_relabel: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint cadence must be at least 1 phase")
        if self.max_checkpoints < 1:
            raise ValueError("at least one checkpoint must be retained")
        if self.max_rollbacks < 0:
            raise ValueError("rollback budget must be non-negative")
        if self.max_backoff_phases < 0:
            raise ValueError("backoff budget must be non-negative")

    def with_(self, **changes) -> "RecoveryPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def from_spec(cls, spec: str) -> "RecoveryPolicy":
        """Parse a CLI recovery specification.

        Comma-separated ``key=value`` items; recognised keys:
        ``every`` (checkpoint cadence), ``retain`` (max checkpoints),
        ``rollbacks``, ``backoff`` (max backoff phases), ``surgery`` and
        ``relabel`` (``on``/``off``).  Example: ``every=4,surgery=off``.
        """
        kwargs: dict = {}
        names = {
            "every": "checkpoint_every",
            "retain": "max_checkpoints",
            "rollbacks": "max_rollbacks",
            "backoff": "max_backoff_phases",
            "surgery": "allow_surgery",
            "relabel": "allow_relabel",
        }
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"recovery spec item {item!r} is not of the form key=value"
                )
            key, value = (part.strip() for part in item.split("=", 1))
            field = names.get(key)
            if field is None:
                raise ValueError(
                    f"unknown recovery spec key {key!r}; expected "
                    + ", ".join(sorted(names))
                )
            if field.startswith("allow_"):
                if value not in ("on", "off"):
                    raise ValueError(
                        f"recovery spec {key}={value!r}: expected on or off"
                    )
                kwargs[field] = value == "on"
            else:
                try:
                    kwargs[field] = int(value)
                except ValueError:
                    raise ValueError(
                        f"recovery spec {key}={value!r}: {value!r} is not "
                        "an integer"
                    ) from None
        return cls(**kwargs)

    def describe(self) -> str:
        return (
            f"checkpoint every {self.checkpoint_every} phase(s), retain "
            f"{self.max_checkpoints}, rollbacks<={self.max_rollbacks}, "
            f"backoff<={self.max_backoff_phases}, surgery="
            f"{'on' if self.allow_surgery else 'off'}, relabel="
            f"{'on' if self.allow_relabel else 'off'}"
        )
