"""Resume-based plan execution: checkpoint, roll back, repair, continue.

:func:`execute_with_recovery` runs a :class:`~repro.plans.ir.CompiledPlan`
op by op on a (possibly faulted) network, checkpointing on cadence.  On
a :class:`~repro.machine.faults.FaultError` it does **not** restart:

* a **transient** fault's window end is read off the attached
  :class:`~repro.machine.faults.FaultPlan`; the executor inserts idle
  phases until the window closes (the phase clock is the fault clock),
  rolls the memories back to the newest checkpoint and resumes from its
  cursor — replaying at most ``checkpoint_every`` phases instead of the
  whole run;
* a **permanent** fault triggers *plan surgery*
  (:mod:`repro.recovery.surgery`): the remaining op suffix is rewritten
  around the dead links (detour expansion or XOR relabeling), completed
  phases' work is kept, and execution continues on the repaired suffix.

Every action is accounted: ``checkpoints`` / ``rollbacks`` /
``replayed_phases`` / ``wasted_elements`` counters on the network's
:class:`~repro.machine.metrics.TransferStats`, a
:class:`RecoveryReport` for callers, ``recover`` spans and
``recovery_mttr`` model-time histograms on an attached
:class:`~repro.obs.instrumentation.Instrumentation` hub.  When the
budget runs out (``max_rollbacks``) or surgery finds no valid rewrite,
:class:`RecoveryFailedError` tells the caller to take the PR 1
degradation ladder instead.

The finished run **self-verifies**: the final key→node state (residual
blocks plus collected blocks) must equal the symbolic execution of the
original plan, so a recovery can never silently deliver blocks to the
wrong nodes.  With a payload ledger (``payloads=``, see
:class:`~repro.plans.recorder.RecordingNetwork`) the run moves real
arrays, enabling bit-identical comparison against a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.integrity.errors import CorruptedCheckpointError
from repro.machine.engine import CubeNetwork
from repro.machine.faults import (
    FaultError,
    FaultKind,
    LinkFailureError,
    NodeFailureError,
)
from repro.machine.message import Block, Message
from repro.obs.instrumentation import instrumentation_of
from repro.plans.ir import (
    CollectOp,
    CompiledPlan,
    CopyOp,
    IdleOp,
    LocalOp,
    PhaseOp,
    PlaceOp,
    PlanOp,
    RemapOp,
)
from repro.plans.replay import PlanReplayError
from repro.plans.symbolic import SymbolicError, simulate_ops
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.policy import RecoveryPolicy
from repro.recovery.surgery import SurgeryError, physicalize, plan_surgery

__all__ = [
    "RecoveryFailedError",
    "RecoveryOutcome",
    "RecoveryReport",
    "execute_with_recovery",
    "outcomes_equivalent",
]


class RecoveryFailedError(RuntimeError):
    """Recovery gave up; the caller should take the degradation ladder.

    Carries the :class:`RecoveryReport` accumulated so far as
    ``report``, so the failed attempt's cost is still visible.
    """

    def __init__(self, message: str, report: "RecoveryReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass
class RecoveryReport:
    """What recovery did during one plan execution."""

    fault_encounters: int = 0
    checkpoints_taken: int = 0
    rollbacks: int = 0
    replayed_phases: int = 0
    wasted_elements: int = 0
    backoff_phases: int = 0
    #: One entry per successful surgery: strategy, cost, detour/relabel data.
    surgeries: list[dict] = field(default_factory=list)
    #: Model-time repair durations (fault encounter -> caught back up).
    mttr: list[float] = field(default_factory=list)
    #: How the run ultimately completed: ``clean`` (no fault touched it),
    #: ``resume`` (transient backoff only), ``surgery-detour`` /
    #: ``surgery-relabel`` (a permanent fault was rewired), or —  set by
    #: callers that ladder after :class:`RecoveryFailedError` —
    #: ``ladder``.
    resolved: str = "clean"

    @property
    def recovered(self) -> bool:
        return self.resolved not in ("clean", "ladder")

    def as_dict(self) -> dict:
        return {
            "fault_encounters": self.fault_encounters,
            "checkpoints_taken": self.checkpoints_taken,
            "rollbacks": self.rollbacks,
            "replayed_phases": self.replayed_phases,
            "wasted_elements": self.wasted_elements,
            "backoff_phases": self.backoff_phases,
            "surgeries": [dict(s) for s in self.surgeries],
            "mttr": list(self.mttr),
            "resolved": self.resolved,
            "recovered": self.recovered,
        }


@dataclass
class RecoveryOutcome:
    """Result of one :func:`execute_with_recovery` run."""

    plan: CompiledPlan
    report: RecoveryReport
    #: key -> (physical node, block) for every collected block.
    collected: dict[Hashable, tuple[int, Block]]
    #: key -> (physical node, size) for blocks still resident at the end.
    residual: dict[Hashable, tuple[int, int]]
    #: Final-state check against the symbolic run of the original plan.
    verified: bool
    #: Modelled time the run took (includes backoff and replays).
    elapsed: float


def outcomes_equivalent(a: RecoveryOutcome, b: RecoveryOutcome) -> bool:
    """Do two runs end in the same state (payload-exact when real)?"""
    if set(a.collected) != set(b.collected):
        return False
    if a.residual != b.residual:
        return False
    for key, (node, block) in a.collected.items():
        other_node, other = b.collected[key]
        if node != other_node or block.size != other.size:
            return False
        if block.data is not None and other.data is not None:
            if not np.array_equal(block.data, other.data):
                return False
    return True


def execute_with_recovery(
    plan: CompiledPlan,
    network: CubeNetwork,
    *,
    policy: RecoveryPolicy | None = None,
    payloads: Mapping[Hashable, list] | None = None,
) -> RecoveryOutcome:
    """Run ``plan`` on ``network`` with checkpointed fault recovery.

    ``payloads`` optionally binds real arrays to placements (a ledger
    keyed by block key, one array per successive placement of the key —
    see ``RecordingNetwork(record_payloads=True)``); without it the run
    is virtual, exactly like :func:`~repro.plans.replay.replay_plan`.
    Raises :class:`RecoveryFailedError` when the policy's budgets are
    exhausted or no plan surgery validates.
    """
    if policy is None:
        policy = RecoveryPolicy()
    if not plan.machine.compatible_with(network.params):
        raise PlanReplayError(
            f"plan was compiled for {plan.machine.as_dict(with_name=False)} "
            f"but the network is {network.params.name!r} "
            f"(n={network.params.n})"
        )
    n = network.params.n
    instr = instrumentation_of(network)
    report = RecoveryReport()
    manager = CheckpointManager(
        every=policy.checkpoint_every, retain=policy.max_checkpoints
    )
    ops: tuple[PlanOp, ...] = plan.ops
    cursor = 0
    mask = 0
    consumed: dict[Hashable, int] = {}
    collected: dict[Hashable, tuple[int, Block]] = {}
    #: Open repair episodes: (cursor the run must pass, model start time).
    episodes: list[list] = []
    start_time = network.stats.time

    manager.take(network, cursor=0, mask=0)
    report.checkpoints_taken += 1

    while cursor < len(ops):
        op = ops[cursor]
        if isinstance(op, RemapOp):
            mask ^= op.mask
            cursor += 1
            continue
        try:
            _execute_op(op, network, mask, payloads, consumed, collected)
        except FaultError as exc:
            ops, cursor, mask = _handle_fault(
                exc, network, policy, manager, report, instr,
                ops, cursor, mask, consumed, collected, episodes,
            )
            continue
        cursor += 1
        if isinstance(op, (PhaseOp, IdleOp)):
            if manager.maybe_take(
                network,
                cursor=cursor,
                mask=mask,
                consumed=consumed,
                collected=collected,
            ):
                report.checkpoints_taken += 1
        if episodes:
            now = network.stats.time
            still_open = []
            for episode in episodes:
                if cursor > episode[0]:
                    duration = now - episode[1]
                    report.mttr.append(duration)
                    if instr.enabled:
                        instr.metrics.histogram(
                            "recovery_mttr"
                        ).observe(duration)
                else:
                    still_open.append(episode)
            episodes = still_open

    residual = {
        key: (x, mem.get(key).size)
        for x, mem in enumerate(network.memories)
        for key in mem.keys()
    }
    verified = _verify_final_state(plan, residual, collected, n)
    if instr.enabled:
        if report.recovered:
            instr.metrics.counter("recovered_runs").inc()
        if report.replayed_phases:
            instr.metrics.counter("recovery_replayed_phases").inc(
                report.replayed_phases
            )
        if report.wasted_elements:
            instr.metrics.counter("recovery_wasted_elements").inc(
                report.wasted_elements
            )
    return RecoveryOutcome(
        plan=plan,
        report=report,
        collected=collected,
        residual=residual,
        verified=verified,
        elapsed=network.stats.time - start_time,
    )


def _execute_op(
    op: PlanOp,
    network: CubeNetwork,
    mask: int,
    payloads: Mapping[Hashable, list] | None,
    consumed: dict,
    collected: dict,
) -> None:
    if isinstance(op, PhaseOp):
        messages = [
            Message(m.src ^ mask, m.dst ^ mask, m.keys) for m in op.messages
        ]
        network.execute_phase(messages, exclusive=op.exclusive)
    elif isinstance(op, PlaceOp):
        node = op.node ^ mask
        if payloads is None:
            network.place(node, Block(op.key, virtual_size=op.size))
        else:
            ledger = payloads.get(op.key)
            index = consumed.get(op.key, 0)
            if ledger is None or index >= len(ledger):
                raise PlanReplayError(
                    f"payload ledger has no array for placement "
                    f"#{index + 1} of key {op.key!r}"
                )
            network.place(node, Block(op.key, data=ledger[index]))
            consumed[op.key] = index + 1
    elif isinstance(op, CollectOp):
        node = op.node ^ mask
        collected[op.key] = (node, network.memories[node].pop(op.key))
    elif isinstance(op, CopyOp):
        network.charge_copy({x ^ mask: c for x, c in op.per_node})
    elif isinstance(op, LocalOp):
        costs = (
            op.costs
            if isinstance(op.costs, float)
            else {x ^ mask: c for x, c in op.costs}
        )
        elements = (
            op.elements
            if op.elements is None or isinstance(op.elements, int)
            else {x ^ mask: c for x, c in op.elements}
        )
        network.execute_local(costs, elements)
    elif isinstance(op, IdleOp):
        network.idle_phase()
    else:
        raise PlanReplayError(f"unknown op in plan: {op!r}")


def _suffix_cost(ops, start: int, stop: int) -> tuple[int, int]:
    """(phase count, message element-hops) of ``ops[start:stop]``."""
    phases = 0
    elements = 0
    for op in ops[start:stop]:
        if isinstance(op, (PhaseOp, IdleOp)):
            phases += 1
        if isinstance(op, PhaseOp):
            elements += sum(m.elements for m in op.messages)
    return phases, elements


def _rollback(
    network, manager, report, ops, failed_cursor, consumed, collected
):
    """Restore the newest valid checkpoint; returns its cursor state.

    Checkpoints are digest-validated on restore; if every retained
    snapshot fails its seal, recovery refuses to resume from corrupted
    state and fails over to the caller's degradation ladder.
    """
    try:
        ckpt = manager.rollback(network)
    except CorruptedCheckpointError as err:
        raise RecoveryFailedError(
            f"cannot resume from checkpointed state: {err}", report
        ) from err
    replayed, wasted = _suffix_cost(ops, ckpt.cursor, failed_cursor)
    network.stats.record_rollback(replayed)
    network.stats.record_wasted(wasted)
    report.rollbacks += 1
    report.replayed_phases += replayed
    report.wasted_elements += wasted
    consumed.clear()
    consumed.update(ckpt.consumed)
    collected.clear()
    collected.update(ckpt.collected)
    return ckpt


def _handle_fault(
    exc: FaultError,
    network: CubeNetwork,
    policy: RecoveryPolicy,
    manager: CheckpointManager,
    report: RecoveryReport,
    instr,
    ops: tuple[PlanOp, ...],
    cursor: int,
    mask: int,
    consumed: dict,
    collected: dict,
    episodes: list,
) -> tuple[tuple[PlanOp, ...], int, int]:
    report.fault_encounters += 1
    episodes.append([cursor, network.stats.time])
    if report.rollbacks >= policy.max_rollbacks:
        raise RecoveryFailedError(
            f"rollback budget ({policy.max_rollbacks}) exhausted at "
            f"phase {network.phase_index}: {exc}",
            report,
        )
    kind = getattr(exc, "kind", FaultKind.PERMANENT)
    if kind is FaultKind.TRANSIENT:
        return _backoff_and_resume(
            exc, network, policy, manager, report, instr,
            ops, cursor, consumed, collected,
        )
    return _repair_and_resume(
        exc, network, policy, manager, report, instr,
        ops, cursor, mask, consumed, collected, episodes,
    )


def _backoff_and_resume(
    exc, network, policy, manager, report, instr,
    ops, cursor, consumed, collected,
):
    """Idle out the transient window, then resume from the checkpoint."""
    fault = None
    phase = network.phase_index
    if isinstance(exc, LinkFailureError):
        fault = network.faults.link_fault(exc.src, exc.dst, phase)
    elif isinstance(exc, NodeFailureError):
        fault = network.faults.node_fault(exc.node, phase)
    wait = 1 if fault is None or fault.end is None else fault.end - phase
    wait = max(wait, 1)
    if wait > policy.max_backoff_phases:
        raise RecoveryFailedError(
            f"transient window needs {wait} idle phase(s), over the "
            f"backoff budget ({policy.max_backoff_phases}): {exc}",
            report,
        )
    with instr.span(
        "recover",
        category="recovery",
        action="backoff",
        phase=phase,
        wait=wait,
    ):
        for _ in range(wait):
            network.idle_phase()
            network.stats.record_stall()
        report.backoff_phases += wait
        ckpt = _rollback(
            network, manager, report, ops, cursor, consumed, collected
        )
    if instr.enabled:
        instr.recovery(
            "backoff", phase=phase, wait=wait, resume_cursor=ckpt.cursor
        )
    if report.resolved == "clean":
        report.resolved = "resume"
    return ops, ckpt.cursor, ckpt.mask


def _repair_and_resume(
    exc, network, policy, manager, report, instr,
    ops, cursor, mask, consumed, collected, episodes,
):
    """Roll back, rewrite the remaining suffix around dead resources."""
    if not policy.allow_surgery:
        raise RecoveryFailedError(
            f"permanent fault with surgery disabled: {exc}", report
        )
    phase = network.phase_index
    with instr.span(
        "recover", category="recovery", action="surgery", phase=phase
    ) as span:
        ckpt = _rollback(
            network, manager, report, ops, cursor, consumed, collected
        )
        remaining = physicalize(ops[ckpt.cursor :], ckpt.mask)
        holdings: dict[Hashable, int] = {}
        sizes: dict[Hashable, int] = {}
        for x, mem in enumerate(network.memories):
            for key in mem.keys():
                holdings[key] = x
                sizes[key] = mem.get(key).size
        faults = network.faults
        # Quarantined links (repeat corruption offenders) are permanently
        # dead for all planning purposes: surgery must detour or relabel
        # around them exactly as it does for fail-stop link faults.
        dead_links = set(
            faults.permanent_links() if faults is not None else ()
        )
        dead_nodes = (
            faults.permanent_nodes() if faults is not None else set()
        )
        if network.integrity is not None:
            dead_links |= network.integrity.quarantined_links()
        try:
            result = plan_surgery(
                remaining,
                n=network.params.n,
                dead_links=dead_links,
                dead_nodes=dead_nodes,
                holdings=holdings,
                sizes=sizes,
                allow_relabel=policy.allow_relabel,
            )
        except SurgeryError as err:
            raise RecoveryFailedError(
                f"plan surgery found no valid rewrite: {err}", report
            ) from err
        span.annotate(
            strategy=result.strategy,
            added_element_hops=result.added_element_hops,
        )
    report.surgeries.append(
        {
            "phase": phase,
            "strategy": result.strategy,
            "added_element_hops": result.added_element_hops,
            "detoured_messages": result.detoured_messages,
            "relabel_mask": result.relabel_mask,
        }
    )
    report.resolved = f"surgery-{result.strategy}"
    if instr.enabled:
        instr.recovery(
            "surgery",
            phase=phase,
            strategy=result.strategy,
            added_element_hops=result.added_element_hops,
        )
    # Old checkpoints index the pre-surgery op sequence; re-prime on the
    # repaired one.
    manager.reset()
    manager.take(
        network, cursor=0, mask=0, consumed=consumed, collected=collected
    )
    report.checkpoints_taken += 1
    # The repaired sequence starts fresh at cursor 0: any open episode
    # closes as soon as its first op lands.
    for episode in episodes:
        episode[0] = -1
    return result.ops, 0, 0


def _verify_final_state(
    plan: CompiledPlan,
    residual: Mapping[Hashable, tuple[int, int]],
    collected: Mapping[Hashable, tuple[int, Block]],
    n: int,
) -> bool:
    """Final key→node state must match the plan's symbolic execution."""
    try:
        expected = simulate_ops(plan.ops, {}, n=n)
    except SymbolicError:
        return False
    actual_residual = {key: node for key, (node, _) in residual.items()}
    actual_collected = {key: node for key, (node, _) in collected.items()}
    return (
        expected.residual == actual_residual
        and expected.collected == actual_collected
    )
