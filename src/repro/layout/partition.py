"""Constructors for the paper's standard layouts (§2, Tables 1-2).

Element-address convention: ``w = (u || v)``, so row-index bit ``u_j``
is element-address dimension ``q + j`` and column-index bit ``v_j`` is
dimension ``j``.

* one-dimensional **cyclic** by rows: processors keyed by the *lowest*
  ``n`` row bits (row ``u`` on processor ``u mod N``);
* one-dimensional **consecutive** by rows: the *highest* ``n`` row bits
  (row ``u`` on processor ``floor(u / (P/N))``);
* analogous by columns;
* two-dimensional cyclic/consecutive with ``n_r`` row partitions and
  ``n_c`` column partitions, yielding a ``(row-field || column-field)``
  processor address;
* **combined** assignments with an arbitrary contiguous field offset.

Each constructor takes ``gray=True`` to encode the processor field(s) in
binary-reflected Gray code (Table 1's bottom rows).
"""

from __future__ import annotations

from repro.layout.fields import Layout, ProcField

__all__ = [
    "column_consecutive",
    "column_cyclic",
    "combined_contiguous",
    "combined_split",
    "one_dim_embeddings",
    "row_consecutive",
    "row_cyclic",
    "two_dim_consecutive",
    "two_dim_cyclic",
    "two_dim_mixed",
]


def _check(p: int, q: int, n: int, limit: int, kind: str) -> None:
    if n < 0:
        raise ValueError(f"number of partition bits must be non-negative, got {n}")
    if n > limit:
        raise ValueError(
            f"{kind} partitioning needs at most {limit} processor bits, got {n}"
        )


def row_cyclic(p: int, q: int, n: int, *, gray: bool = False) -> Layout:
    """Row ``u`` on processor ``u mod 2^n``: rp = ``(u_{n-1} ... u_0)``."""
    _check(p, q, n, p, "row")
    dims = tuple(q + j for j in range(n - 1, -1, -1))
    return Layout(p, q, (ProcField(dims, gray),), name=_name("row-cyclic", gray))


def row_consecutive(p: int, q: int, n: int, *, gray: bool = False) -> Layout:
    """Block rows: rp = ``(u_{p-1} ... u_{p-n})``."""
    _check(p, q, n, p, "row")
    dims = tuple(q + j for j in range(p - 1, p - n - 1, -1))
    return Layout(p, q, (ProcField(dims, gray),), name=_name("row-consecutive", gray))


def column_cyclic(p: int, q: int, n: int, *, gray: bool = False) -> Layout:
    """Column ``v`` on processor ``v mod 2^n``: rp = ``(v_{n-1} ... v_0)``."""
    _check(p, q, n, q, "column")
    dims = tuple(range(n - 1, -1, -1))
    return Layout(p, q, (ProcField(dims, gray),), name=_name("col-cyclic", gray))


def column_consecutive(p: int, q: int, n: int, *, gray: bool = False) -> Layout:
    """Block columns: rp = ``(v_{q-1} ... v_{q-n})``."""
    _check(p, q, n, q, "column")
    dims = tuple(range(q - 1, q - n - 1, -1))
    return Layout(p, q, (ProcField(dims, gray),), name=_name("col-consecutive", gray))


def two_dim_cyclic(
    p: int, q: int, n_r: int, n_c: int, *, gray: bool = False
) -> Layout:
    """Element ``(u, v)`` in partition ``(u mod N_r, v mod N_c)``."""
    _check(p, q, n_r, p, "row")
    _check(p, q, n_c, q, "column")
    row = ProcField(tuple(q + j for j in range(n_r - 1, -1, -1)), gray)
    col = ProcField(tuple(range(n_c - 1, -1, -1)), gray)
    return Layout(p, q, (row, col), name=_name("2d-cyclic", gray))


def two_dim_consecutive(
    p: int, q: int, n_r: int, n_c: int, *, gray: bool = False
) -> Layout:
    """Element ``(u, v)`` in block ``(floor(u/(P/N_r)), floor(v/(Q/N_c)))``."""
    _check(p, q, n_r, p, "row")
    _check(p, q, n_c, q, "column")
    row = ProcField(tuple(q + j for j in range(p - 1, p - n_r - 1, -1)), gray)
    col = ProcField(tuple(range(q - 1, q - n_c - 1, -1)), gray)
    return Layout(p, q, (row, col), name=_name("2d-consecutive", gray))


def two_dim_mixed(
    p: int,
    q: int,
    n_r: int,
    n_c: int,
    *,
    rows: str = "consecutive",
    cols: str = "cyclic",
    row_gray: bool = False,
    col_gray: bool = False,
) -> Layout:
    """Different assignment (or encoding) per axis, e.g. §6's
    consecutive-rows / cyclic-columns example and §6.3's binary-rows /
    Gray-columns encoding."""
    _check(p, q, n_r, p, "row")
    _check(p, q, n_c, q, "column")
    if rows == "consecutive":
        rdims = tuple(q + j for j in range(p - 1, p - n_r - 1, -1))
    elif rows == "cyclic":
        rdims = tuple(q + j for j in range(n_r - 1, -1, -1))
    else:
        raise ValueError(f"unknown row assignment {rows!r}")
    if cols == "consecutive":
        cdims = tuple(range(q - 1, q - n_c - 1, -1))
    elif cols == "cyclic":
        cdims = tuple(range(n_c - 1, -1, -1))
    else:
        raise ValueError(f"unknown column assignment {cols!r}")
    name = f"2d-{rows[:4]}{'G' if row_gray else ''}-{cols[:4]}{'G' if col_gray else ''}"
    return Layout(
        p,
        q,
        (ProcField(rdims, row_gray), ProcField(cdims, col_gray)),
        name=name,
    )


def combined_contiguous(
    p: int, q: int, n: int, *, offset: int, axis: str = "row", gray: bool = False
) -> Layout:
    """Combined assignment with a contiguous field at a given offset.

    Table 2's contiguous example: the processor field is
    ``(u_{p-i} ... u_{p-i-n+1})`` — ``offset = i`` bits below the top of
    the row (or column) index.  ``offset = 0`` degenerates to consecutive;
    ``offset = p - n`` (or ``q - n``) to cyclic.  Bits above the field are
    assigned cyclically, bits below consecutively.
    """
    if axis == "row":
        _check(p, q, n, p, "row")
        if offset < 0 or offset + n > p:
            raise ValueError(f"field [{offset}, {offset + n}) outside row index")
        top = p - 1 - offset
        dims = tuple(q + j for j in range(top, top - n, -1))
    elif axis == "column":
        _check(p, q, n, q, "column")
        if offset < 0 or offset + n > q:
            raise ValueError(f"field [{offset}, {offset + n}) outside column index")
        top = q - 1 - offset
        dims = tuple(range(top, top - n, -1))
    else:
        raise ValueError(f"unknown axis {axis!r}")
    return Layout(
        p,
        q,
        (ProcField(dims, gray),),
        name=_name(f"combined-{axis}@{offset}", gray),
    )


def combined_split(
    p: int, q: int, n: int, *, s: int, axis: str = "row", gray: bool = False
) -> Layout:
    """Combined assignment with a *split* processor field (Table 2).

    ``s`` high-order index bits plus ``n - s`` low-order bits select the
    processor: ``(u_{p-1} .. u_{p-s}, u_{n-s-1} .. u_0)`` for rows.  With
    ``gray=True`` each sub-field is Gray-encoded separately —
    ``(G(u_{p-1}..u_{p-s}) G(u_{n-s-1}..u_0))``, Table 2's non-contiguous
    column.  The middle bits are consecutive-assigned, the extremes
    cyclic — the §2 banded-matrix pattern.
    """
    if not 0 <= s <= n:
        raise ValueError(f"split point s must be in [0, {n}], got {s}")
    if axis == "row":
        _check(p, q, n, p, "row")
        high = tuple(q + j for j in range(p - 1, p - s - 1, -1))
        low = tuple(q + j for j in range(n - s - 1, -1, -1))
    elif axis == "column":
        _check(p, q, n, q, "column")
        high = tuple(range(q - 1, q - s - 1, -1))
        low = tuple(range(n - s - 1, -1, -1))
    else:
        raise ValueError(f"unknown axis {axis!r}")
    fields = tuple(
        ProcField(dims, gray) for dims in (high, low) if dims
    )
    return Layout(p, q, fields, name=_name(f"split-{axis}@{s}", gray))


def one_dim_embeddings(p: int, q: int, n: int) -> dict[str, Layout]:
    """The §2 catalogue: "a total of 16 matrix embeddings result for a
    one-dimensional partitioning" — {binary, Gray} x {consecutive,
    cyclic, combined contiguous, combined split} x {row, column},
    collapsed here to the 16 per-axis-scheme/encoding combinations
    (8 row forms + 8 column forms).
    """
    out: dict[str, Layout] = {}
    for gray in (False, True):
        enc = "gray" if gray else "binary"
        out[f"row-consecutive-{enc}"] = row_consecutive(p, q, n, gray=gray)
        out[f"row-cyclic-{enc}"] = row_cyclic(p, q, n, gray=gray)
        out[f"row-combined-{enc}"] = combined_contiguous(
            p, q, n, offset=max(0, (p - n) // 2), axis="row", gray=gray
        )
        out[f"row-split-{enc}"] = combined_split(
            p, q, n, s=max(1, n // 2), axis="row", gray=gray
        )
        out[f"col-consecutive-{enc}"] = column_consecutive(p, q, n, gray=gray)
        out[f"col-cyclic-{enc}"] = column_cyclic(p, q, n, gray=gray)
        out[f"col-combined-{enc}"] = combined_contiguous(
            p, q, n, offset=max(0, (q - n) // 2), axis="column", gray=gray
        )
        out[f"col-split-{enc}"] = combined_split(
            p, q, n, s=max(1, n // 2), axis="column", gray=gray
        )
    return out


def _name(base: str, gray: bool) -> str:
    return f"{base}-gray" if gray else base
