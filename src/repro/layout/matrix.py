"""Distributed matrices: real data spread over the simulated cube.

A :class:`DistributedMatrix` couples a :class:`~repro.layout.fields.Layout`
with the per-processor local arrays it induces.  Transpose algorithms
consume one and produce another; tests verify end-to-end correctness by
:meth:`DistributedMatrix.to_global` and comparison with ``A.T``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.fields import Layout

__all__ = ["DistributedMatrix"]


@dataclass
class DistributedMatrix:
    """A ``2^p x 2^q`` matrix distributed according to ``layout``.

    ``local_data`` has shape ``(num_procs, local_size)``; row ``x`` is the
    local store of processor ``x``, indexed by local offset.
    """

    layout: Layout
    local_data: np.ndarray

    def __post_init__(self) -> None:
        expected = (self.layout.num_procs, self.layout.local_size)
        if self.local_data.shape != expected:
            raise ValueError(
                f"local data has shape {self.local_data.shape}, expected {expected}"
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_global(cls, matrix: np.ndarray, layout: Layout) -> "DistributedMatrix":
        """Scatter a global ``2^p x 2^q`` array over the processors."""
        P, Q = 1 << layout.p, 1 << layout.q
        matrix = np.asarray(matrix)
        if matrix.shape != (P, Q):
            raise ValueError(
                f"matrix has shape {matrix.shape}, layout expects {(P, Q)}"
            )
        flat = matrix.reshape(-1)  # C order: flat[u * Q + v] = a(u, v) = flat[w]
        w = np.arange(P * Q, dtype=np.int64)
        combined = layout.owner_array(w) * layout.local_size + layout.offset_array(w)
        packed = np.empty(P * Q, dtype=matrix.dtype)
        packed[combined] = flat
        return cls(layout, packed.reshape(layout.num_procs, layout.local_size))

    @classmethod
    def iota(cls, layout: Layout, dtype=np.int64) -> "DistributedMatrix":
        """The matrix whose element ``(u, v)`` has value ``(u || v)``.

        Every element value is its own address, which makes layout bugs
        immediately visible in tests.
        """
        P, Q = 1 << layout.p, 1 << layout.q
        a = np.arange(P * Q, dtype=dtype).reshape(P, Q)
        return cls.from_global(a, layout)

    # -- access ---------------------------------------------------------------

    def to_global(self) -> np.ndarray:
        """Gather the distributed data back into a global array."""
        layout = self.layout
        P, Q = 1 << layout.p, 1 << layout.q
        w = np.arange(P * Q, dtype=np.int64)
        combined = layout.owner_array(w) * layout.local_size + layout.offset_array(w)
        return self.local_data.reshape(-1)[combined].reshape(P, Q)

    def local(self, proc: int) -> np.ndarray:
        """The local array of one processor (a view)."""
        return self.local_data[proc]

    def local_matrix(self, proc: int) -> np.ndarray:
        """One processor's data as its 2-D sub-matrix (a view).

        Available for block (consecutive) layouts, where each node holds
        a contiguous ``local_rows x local_cols`` tile; application code
        (ADI sweeps, per-row FFTs, tridiagonal solves) operates on this
        view directly.  Raises for interleaving layouts.
        """
        shape = self.layout.local_block_shape()
        if shape is None:
            raise ValueError(
                f"layout {self.layout.name!r} does not store contiguous "
                "sub-matrices; use local() and address bookkeeping"
            )
        return self.local_data[proc].reshape(shape)

    def map_local(self, fn) -> "DistributedMatrix":
        """Apply a node-local kernel to every processor's sub-matrix.

        ``fn(tile, proc)`` receives the processor's contiguous
        ``local_rows x local_cols`` tile (block layouts only, see
        :meth:`local_matrix`) and returns an equal-size array; the results
        form a new distributed matrix (dtype follows the first result, so
        real-to-complex kernels like FFTs work).  This is the idiom of the
        paper's motivating applications: solve along the local axis,
        transpose, solve along the other.
        """
        shape = self.layout.local_block_shape()
        if shape is None:
            raise ValueError(
                f"layout {self.layout.name!r} does not store contiguous "
                "sub-matrices; map over local() manually"
            )
        first = np.asarray(fn(self.local_data[0].reshape(shape), 0))
        if first.shape != shape:
            raise ValueError(
                f"kernel returned shape {first.shape}, expected {shape}"
            )
        out = np.empty(self.local_data.shape, dtype=first.dtype)
        out[0] = first.reshape(-1)
        for proc in range(1, self.local_data.shape[0]):
            result = np.asarray(fn(self.local_data[proc].reshape(shape), proc))
            if result.shape != shape:
                raise ValueError(
                    f"kernel returned shape {result.shape}, expected {shape}"
                )
            out[proc] = result.reshape(-1)
        return DistributedMatrix(self.layout, out)

    def copy(self) -> "DistributedMatrix":
        return DistributedMatrix(self.layout, self.local_data.copy())

    def with_layout(self, layout: Layout) -> "DistributedMatrix":
        """Reinterpret the same local data under another layout.

        The two layouts must induce identical shapes; used when an
        algorithm finishes with data physically arranged for the target
        layout.
        """
        if (layout.num_procs, layout.local_size) != self.local_data.shape:
            raise ValueError("layout shape mismatch")
        return DistributedMatrix(layout, self.local_data)

    def allclose(self, matrix: np.ndarray) -> bool:
        """Does the gathered matrix equal ``matrix``?"""
        return bool(np.allclose(self.to_global(), matrix))

    @property
    def total_elements(self) -> int:
        return int(self.local_data.size)
