"""Address-field descriptions of matrix layouts.

A matrix element ``a(u, v)`` of a ``2^p x 2^q`` matrix has the ``m = p+q``
bit address ``w = (u || v)``.  A layout selects ``n`` of the ``m`` address
dimensions as the *real processor* (``rp``) field and leaves the rest as
*virtual processor* (``vp``) dimensions that index local storage
(Definition 7).  The ``rp`` field may be split into sub-fields, each
independently encoded in binary or binary-reflected Gray code — this is
exactly the generality of the paper's Tables 1 and 2 (consecutive, cyclic
and combined assignments, contiguous or split fields).

:class:`Layout` is the value object; it converts between element
addresses and (processor, local offset) pairs, scalar or vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.gray import gray_decode, gray_encode, gray_encode_array

__all__ = ["ProcField", "Layout"]


@dataclass(frozen=True)
class ProcField:
    """One sub-field of the real-processor address.

    ``dims`` lists element-address bit positions, most significant first
    (matching the paper's left-to-right notation).  If ``gray`` is set the
    field value is passed through ``G`` before being used as processor
    address bits.
    """

    dims: tuple[int, ...]
    gray: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.dims, tuple):
            object.__setattr__(self, "dims", tuple(self.dims))
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"field dims contain duplicates: {self.dims}")
        for d in self.dims:
            if d < 0:
                raise ValueError(f"negative address dimension {d}")

    @property
    def width(self) -> int:
        return len(self.dims)


@dataclass(frozen=True)
class Layout:
    """A mapping of matrix elements to (processor, local offset).

    Parameters
    ----------
    p, q:
        Row/column address widths: the matrix is ``2^p x 2^q``.
    fields:
        Real-processor sub-fields, most significant first; their widths
        sum to the cube dimension ``n``.
    name:
        Label for reports ("row-cyclic", "2d-consecutive", ...).

    Local offsets order the virtual-processor dimensions from most to
    least significant element-address position, in binary ("elements
    within the stripes/blocks are ordered in the binary order", §2).
    """

    p: int
    q: int
    fields: tuple[ProcField, ...]
    name: str = "layout"

    def __post_init__(self) -> None:
        if self.p < 0 or self.q < 0:
            raise ValueError("p and q must be non-negative")
        if not isinstance(self.fields, tuple):
            object.__setattr__(self, "fields", tuple(self.fields))
        m = self.m
        seen: set[int] = set()
        for f in self.fields:
            for d in f.dims:
                if d >= m:
                    raise ValueError(
                        f"field dimension {d} outside address space of {m} bits"
                    )
                if d in seen:
                    raise ValueError(f"dimension {d} used by two fields")
                seen.add(d)

    # -- basic shape --------------------------------------------------------

    @property
    def m(self) -> int:
        """Total address bits ``p + q``."""
        return self.p + self.q

    @property
    def n(self) -> int:
        """Cube dimension = total width of the real-processor field."""
        return sum(f.width for f in self.fields)

    @property
    def num_procs(self) -> int:
        return 1 << self.n

    @property
    def local_size(self) -> int:
        """Elements per processor ``2^(m - n)``."""
        return 1 << (self.m - self.n)

    @property
    def proc_dims(self) -> tuple[int, ...]:
        """All rp element-address dimensions, most significant first.

        Position ``i`` in this tuple contributes processor-address (cube)
        dimension ``n - 1 - i``.
        """
        return tuple(d for f in self.fields for d in f.dims)

    @property
    def proc_dim_set(self) -> frozenset[int]:
        """The set ``R`` of element dimensions used for real processors."""
        return frozenset(self.proc_dims)

    @property
    def vp_dims(self) -> tuple[int, ...]:
        """Virtual-processor dimensions, most significant first."""
        rp = self.proc_dim_set
        return tuple(d for d in range(self.m - 1, -1, -1) if d not in rp)

    def cube_dim_of(self, element_dim: int) -> int:
        """Cube dimension carrying element-address dimension ``element_dim``."""
        dims = self.proc_dims
        try:
            i = dims.index(element_dim)
        except ValueError:
            raise ValueError(
                f"element dimension {element_dim} is not a processor dimension"
            ) from None
        return self.n - 1 - i

    def offset_bit_of(self, element_dim: int) -> int:
        """Local-offset bit carrying element-address dimension ``element_dim``."""
        dims = self.vp_dims
        try:
            i = dims.index(element_dim)
        except ValueError:
            raise ValueError(
                f"element dimension {element_dim} is not a virtual dimension"
            ) from None
        return (self.m - self.n) - 1 - i

    @property
    def is_gray(self) -> bool:
        return any(f.gray for f in self.fields)

    # -- scalar conversions --------------------------------------------------

    def owner(self, w: int) -> int:
        """Processor holding element address ``w``."""
        proc = 0
        for f in self.fields:
            raw = 0
            for d in f.dims:
                raw = (raw << 1) | ((w >> d) & 1)
            code = gray_encode(raw) if f.gray else raw
            proc = (proc << f.width) | code
        return proc

    def offset(self, w: int) -> int:
        """Local storage offset of element address ``w``."""
        off = 0
        for d in self.vp_dims:
            off = (off << 1) | ((w >> d) & 1)
        return off

    def address_of(self, proc: int, offset: int) -> int:
        """Element address stored at ``(proc, offset)`` — inverse mapping."""
        if proc < 0 or proc >> self.n:
            raise ValueError(f"processor {proc} outside {self.n}-cube")
        if offset < 0 or offset >> (self.m - self.n):
            raise ValueError(f"offset {offset} outside local store")
        w = 0
        # Decode processor fields, most significant first.
        shift = self.n
        for f in self.fields:
            shift -= f.width
            code = (proc >> shift) & ((1 << f.width) - 1)
            raw = gray_decode(code) if f.gray else code
            for i, d in enumerate(f.dims):
                w |= ((raw >> (f.width - 1 - i)) & 1) << d
        vp = self.vp_dims
        for i, d in enumerate(vp):
            w |= ((offset >> (len(vp) - 1 - i)) & 1) << d
        return w

    # -- vectorized conversions -----------------------------------------------

    def owner_array(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.int64)
        proc = np.zeros_like(w)
        for f in self.fields:
            raw = np.zeros_like(w)
            for d in f.dims:
                raw = (raw << 1) | ((w >> d) & 1)
            code = gray_encode_array(raw) if f.gray else raw
            proc = (proc << f.width) | code
        return proc

    def offset_array(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.int64)
        off = np.zeros_like(w)
        for d in self.vp_dims:
            off = (off << 1) | ((w >> d) & 1)
        return off

    def local_block_shape(self) -> tuple[int, int] | None:
        """Shape of a node's data viewed as a contiguous sub-matrix.

        For layouts whose virtual dimensions are exactly "the trailing
        row bits followed by the trailing column bits" — consecutive row,
        column or two-dimensional block layouts — each node's local array
        reshapes to ``(local_rows, local_cols)`` with grid rows in order
        and each local row a contiguous slice of a grid row.  Returns
        ``None`` when the local data is not such a block (cyclic or
        combined layouts interleave it).
        """
        vp = self.vp_dims
        row_vp = [d for d in vp if d >= self.q]
        col_vp = [d for d in vp if d < self.q]
        # Row vp dims must be the low row bits, descending; likewise cols.
        if row_vp != [self.q + j for j in range(len(row_vp) - 1, -1, -1)]:
            return None
        if col_vp != list(range(len(col_vp) - 1, -1, -1)):
            return None
        # And the layout must store rows above columns (our convention
        # sorts vp descending, so this always holds when both match).
        return (1 << len(row_vp), 1 << len(col_vp))

    def address_of_array(
        self, procs: np.ndarray | int, offsets: np.ndarray | int
    ) -> np.ndarray:
        """Vectorized inverse mapping: element addresses at (proc, offset).

        ``procs`` and ``offsets`` broadcast against each other.
        """
        from repro.codes.gray import gray_decode_array

        procs = np.asarray(procs, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if np.any(procs < 0) or np.any(procs >> self.n):
            raise ValueError("processor outside the cube")
        vp_width = self.m - self.n
        if np.any(offsets < 0) or np.any(offsets >> vp_width):
            raise ValueError("offset outside the local store")
        w = np.zeros(np.broadcast(procs, offsets).shape, dtype=np.int64)
        shift = self.n
        for f in self.fields:
            shift -= f.width
            code = (procs >> shift) & ((1 << f.width) - 1)
            raw = gray_decode_array(code, f.width) if f.gray else code
            for i, d in enumerate(f.dims):
                w |= ((raw >> (f.width - 1 - i)) & 1) << d
        vp = self.vp_dims
        for i, d in enumerate(vp):
            w |= ((offsets >> (len(vp) - 1 - i)) & 1) << d
        return w

    # -- conveniences ----------------------------------------------------------

    def render_assignment(self, *, max_rows: int = 16, max_cols: int = 16) -> str:
        """ASCII picture of the element-to-processor assignment.

        Reproduces the style of the paper's Figures 1 and 2: one cell per
        matrix element (``P0``, ``P1``, ...), truncated for large
        matrices.
        """
        P, Q = 1 << self.p, 1 << self.q
        rows = min(P, max_rows)
        cols = min(Q, max_cols)
        width = len(f"P{self.num_procs - 1}")
        lines = []
        for u in range(rows):
            cells = [
                f"P{self.owner((u << self.q) | v)}".rjust(width)
                for v in range(cols)
            ]
            suffix = " ..." if cols < Q else ""
            lines.append(" ".join(cells) + suffix)
        if rows < P:
            lines.append("...")
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line human-readable field map, in the paper's style."""
        parts = []
        for f in self.fields:
            dims = ",".join(str(d) for d in f.dims)
            parts.append(f"{'G(' if f.gray else '('}{dims})")
        return f"{self.name}: p={self.p} q={self.q} rp=[{' '.join(parts)}]"

    def with_name(self, name: str) -> "Layout":
        return Layout(self.p, self.q, self.fields, name)
