"""Data layouts: how a ``2^p x 2^q`` matrix is spread over the cube.

Implements §2 of the paper: one- and two-dimensional partitionings, with
*cyclic*, *consecutive* or *combined* assignment, processor address fields
encoded in *binary* or *binary-reflected Gray code* (Tables 1 and 2), and
the real-processor / virtual-processor address-field algebra (the sets
``R_b``, ``R_a`` and ``I`` that classify the communication a transpose
requires).
"""

from repro.layout.embed import (
    EmbeddedShape,
    embed,
    extract,
    padding_overhead,
)
from repro.layout.fields import Layout, ProcField
from repro.layout.partition import (
    column_cyclic,
    column_consecutive,
    combined_contiguous,
    row_cyclic,
    row_consecutive,
    two_dim_cyclic,
    two_dim_consecutive,
    two_dim_mixed,
)
from repro.layout.matrix import DistributedMatrix
from repro.layout.classify import (
    CommClass,
    classify_transpose,
    dims_after_transpose,
)

__all__ = [
    "CommClass",
    "DistributedMatrix",
    "EmbeddedShape",
    "Layout",
    "ProcField",
    "classify_transpose",
    "embed",
    "extract",
    "padding_overhead",
    "column_consecutive",
    "column_cyclic",
    "combined_contiguous",
    "dims_after_transpose",
    "row_consecutive",
    "row_cyclic",
    "two_dim_consecutive",
    "two_dim_cyclic",
    "two_dim_mixed",
]
