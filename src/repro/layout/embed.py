"""Padded embedding of arbitrary-shape matrices into the cube's domain.

Every layout in :mod:`repro.layout` describes a ``2^p x 2^q`` matrix —
the address algebra of §2 needs power-of-two extents.  Arbitrary shapes
become legal by *embedding*: pad each axis up to the next power of two
(Greenwood's isomorphic grid-in-cube embedding argument), run any plan
on the padded domain, and slice the true extent back out afterwards.
The pad cells travel with the real data, so a compiled plan never needs
to know the true shape — two different shapes that pad to the same
``(p, q)`` share plans (and cache entries) by construction.

:class:`EmbeddedShape` is the bookkeeping record; :func:`embed` /
:func:`extract` are the round-trip.  :func:`padding_overhead` quantifies
the cost of the embedding, mirroring the virtual-processor overhead of
:mod:`repro.layout.virtual`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix

__all__ = ["EmbeddedShape", "embed", "extract", "padding_overhead"]


@dataclass(frozen=True)
class EmbeddedShape:
    """A true ``rows x cols`` extent inside a padded ``2^p x 2^q`` domain."""

    rows: int
    cols: int
    p: int
    q: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"matrix extents must be positive, got {self.rows}x{self.cols}"
            )
        if self.rows > (1 << self.p) or self.cols > (1 << self.q):
            raise ValueError(
                f"{self.rows}x{self.cols} does not fit the padded "
                f"2^{self.p} x 2^{self.q} domain"
            )

    @classmethod
    def for_shape(
        cls, rows: int, cols: int, *, min_p: int = 0, min_q: int = 0
    ) -> "EmbeddedShape":
        """The tightest power-of-two domain holding ``rows x cols``.

        ``min_p`` / ``min_q`` raise the floor — layouts need at least as
        many address bits per axis as they place processor dimensions
        on, so callers pass the partitioning's requirements here.
        """
        if rows < 1 or cols < 1:
            raise ValueError(
                f"matrix extents must be positive, got {rows}x{cols}"
            )
        p = max((rows - 1).bit_length(), min_p)
        q = max((cols - 1).bit_length(), min_q)
        return cls(rows, cols, p, q)

    @property
    def padded_rows(self) -> int:
        return 1 << self.p

    @property
    def padded_cols(self) -> int:
        return 1 << self.q

    @property
    def exact(self) -> bool:
        """True when no padding is needed (power-of-two extents)."""
        return self.rows == self.padded_rows and self.cols == self.padded_cols

    def transposed(self) -> "EmbeddedShape":
        return EmbeddedShape(self.cols, self.rows, self.q, self.p)

    def as_dict(self) -> dict:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "p": self.p,
            "q": self.q,
        }


def embed(
    a: np.ndarray, shape: EmbeddedShape, layout: Layout, *, fill=0.0
) -> DistributedMatrix:
    """Scatter an arbitrary-shape matrix into the padded distributed domain."""
    a = np.asarray(a)
    if a.shape != (shape.rows, shape.cols):
        raise ValueError(
            f"matrix is {a.shape} but the embedding expects "
            f"{shape.rows}x{shape.cols}"
        )
    if (layout.p, layout.q) != (shape.p, shape.q):
        raise ValueError(
            f"layout describes a 2^{layout.p} x 2^{layout.q} domain but the "
            f"embedding pads to 2^{shape.p} x 2^{shape.q}"
        )
    padded = np.full(
        (shape.padded_rows, shape.padded_cols), fill, dtype=a.dtype
    )
    padded[: shape.rows, : shape.cols] = a
    return DistributedMatrix.from_global(padded, layout)


def extract(dm: DistributedMatrix, shape: EmbeddedShape) -> np.ndarray:
    """Gather the true extent back out of the padded domain."""
    if (dm.layout.p, dm.layout.q) != (shape.p, shape.q):
        raise ValueError(
            f"matrix lives in a 2^{dm.layout.p} x 2^{dm.layout.q} domain but "
            f"the embedding is 2^{shape.p} x 2^{shape.q}"
        )
    return dm.to_global()[: shape.rows, : shape.cols].copy()


def padding_overhead(shape: EmbeddedShape) -> float:
    """Fraction of padded elements that are fill, in ``[0, 1)``."""
    true = shape.rows * shape.cols
    padded = shape.padded_rows * shape.padded_cols
    return (padded - true) / padded
