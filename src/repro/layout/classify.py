"""Communication classification of a transpose (§2 and §3 of the paper).

The transpose of a matrix laid out by ``before`` into a matrix laid out by
``after`` moves element ``w = (u || v)`` to the owner that ``after``
assigns to the transposed address ``w' = (v || u)``.  Which *kind* of
personalized communication this requires depends only on the relation
between the element-address dimension sets

* ``R_b``  — dimensions that select the owner before, and
* ``R_a``  — dimensions (expressed in the *original* address space) that
  select the owner after,

and their intersection ``I = R_b ∩ R_a``:

* ``R_a == R_b``                         → pairwise (distinct source/
  destination pairs; the basic two-dimensional transpose, §6.1);
* ``I = ∅`` and ``|R_a| == |R_b|``       → all-to-all personalized
  communication (every one-dimensional transpose, §5);
* ``I = ∅`` and ``|R_a| > |R_b|``        → some-to-all (data splitting);
* ``I = ∅`` and ``|R_a| < |R_b|``        → all-to-some (data accumulation);
* otherwise (``I`` a proper subset)      → mixed (treated in [4], the
  companion "Dimension Permutation" report).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.layout.fields import Layout

__all__ = ["CommClass", "TransposePlanInfo", "classify_transpose", "dims_after_transpose"]


class CommClass(enum.Enum):
    LOCAL = "local"
    PAIRWISE = "pairwise"
    ALL_TO_ALL = "all-to-all"
    SOME_TO_ALL = "some-to-all"
    ALL_TO_SOME = "all-to-some"
    MIXED = "mixed"


def dims_after_transpose(after: Layout) -> tuple[int, ...]:
    """The after-layout's processor dimensions in the original address frame.

    ``after`` is a layout of the transposed (``2^q x 2^p``) matrix, whose
    address space is ``w' = (v || u)``: position ``j < p`` of ``w'`` holds
    ``u_j`` (original position ``q + j``) and position ``j >= p`` holds
    ``v_{j - p}`` (original position ``j - p``).
    """
    p = after.q  # after.q is the original p
    mapped = []
    for j in after.proc_dims:
        mapped.append(q_plus(j, p, after))
    return tuple(mapped)


def q_plus(j: int, p: int, after: Layout) -> int:
    """Map one after-frame dimension to the original frame."""
    q = after.p  # after.p is the original q
    if j < p:
        return q + j
    return j - p


@dataclass(frozen=True)
class TransposePlanInfo:
    """Result of classifying a (before, after) transpose pair."""

    comm_class: CommClass
    r_before: frozenset[int]
    r_after: frozenset[int]
    intersection: frozenset[int]

    @property
    def k(self) -> int:
        """Splitting/accumulation steps ``| |R_b| - |R_a| |`` (§3.3)."""
        return abs(len(self.r_before) - len(self.r_after))

    @property
    def l(self) -> int:
        """All-to-all steps ``min(|R_b|, |R_a|)`` (§3.3)."""
        return min(len(self.r_before), len(self.r_after))


def classify_transpose(before: Layout, after: Layout) -> TransposePlanInfo:
    """Classify the communication required to transpose ``before → after``.

    ``before`` lays out the ``2^p x 2^q`` matrix; ``after`` must lay out
    the transposed ``2^q x 2^p`` matrix.
    """
    if (after.p, after.q) != (before.q, before.p):
        raise ValueError(
            f"after-layout is {2**after.p}x{2**after.q}, expected the "
            f"transposed shape {2**before.q}x{2**before.p}"
        )
    r_b = before.proc_dim_set
    r_a = frozenset(dims_after_transpose(after))
    inter = r_b & r_a

    if not r_b and not r_a:
        cls = CommClass.LOCAL
    elif r_a == r_b:
        cls = CommClass.PAIRWISE
    elif not inter:
        if len(r_a) == len(r_b):
            cls = CommClass.ALL_TO_ALL
        elif len(r_a) > len(r_b):
            cls = CommClass.SOME_TO_ALL
        else:
            cls = CommClass.ALL_TO_SOME
    else:
        cls = CommClass.MIXED
    return TransposePlanInfo(cls, r_b, r_a, frozenset(inter))
