"""Virtual elements: squaring up non-square matrices (Definition 2).

A ``P x Q`` matrix with ``P > Q`` is extended with ``P - Q`` columns of
*virtual elements* so that the square-matrix machinery (the pairwise
SPT/DPT/MPT algorithms, the §6.2 remaps, the planner's default target)
applies; after the transpose the virtual rows are stripped again.

The paper adds virtual columns "corresponding to high or low order
dimensions of the column address space"; we extend at the **high** order
end, which keeps every existing element-address bit in place for the
column index and simply shifts the row field up.  Virtual elements here
are filled with a sentinel and *are* moved by the algorithms (a
conservative timing over-estimate); the paper's remark that they "need
not be communicated" bounds the achievable saving, which
:func:`padding_overhead` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.fields import Layout, ProcField
from repro.layout.matrix import DistributedMatrix

__all__ = [
    "extend_columns",
    "extend_rows",
    "square_up",
    "restrict_to",
    "padding_overhead",
    "SquaredMatrix",
]


def extend_columns(layout: Layout, new_q: int) -> Layout:
    """The same layout on a matrix widened to ``2^new_q`` columns.

    New column-address bits appear at the high end of the column index;
    every existing dimension (column bits unchanged, row bits shifted by
    the widening) keeps its role, so real data keeps its owner.
    """
    if new_q < layout.q:
        raise ValueError("extension cannot shrink the column index")
    shift = new_q - layout.q
    fields = tuple(
        ProcField(
            tuple(d + shift if d >= layout.q else d for d in f.dims), f.gray
        )
        for f in layout.fields
    )
    return Layout(layout.p, new_q, fields, f"{layout.name}-ext")


def extend_rows(layout: Layout, new_p: int) -> Layout:
    """The same layout on a matrix lengthened to ``2^new_p`` rows.

    New row bits appear at the high end of the address space; no existing
    dimension moves.
    """
    if new_p < layout.p:
        raise ValueError("extension cannot shrink the row index")
    return Layout(new_p, layout.q, layout.fields, f"{layout.name}-ext")


@dataclass
class SquaredMatrix:
    """A squared-up distributed matrix plus the bookkeeping to undo it."""

    matrix: DistributedMatrix
    original_p: int
    original_q: int

    @property
    def padded_axis(self) -> str:
        lay = self.matrix.layout
        if lay.q > self.original_q:
            return "columns"
        if lay.p > self.original_p:
            return "rows"
        return "none"


def square_up(
    dm: DistributedMatrix, *, fill: float = 0.0
) -> SquaredMatrix:
    """Extend a rectangular distributed matrix to square with virtuals.

    The extension is performed by re-scattering the global matrix padded
    with ``fill`` — a setup operation, not a modelled communication (the
    virtual elements exist only in the model).
    """
    layout = dm.layout
    p, q = layout.p, layout.q
    if p == q:
        return SquaredMatrix(dm, p, q)
    side = max(p, q)
    A = dm.to_global()
    padded = np.full((1 << side, 1 << side), fill, dtype=A.dtype)
    padded[: A.shape[0], : A.shape[1]] = A
    if q < side:
        new_layout = extend_columns(layout, side)
    else:
        new_layout = extend_rows(layout, side)
    return SquaredMatrix(
        DistributedMatrix.from_global(padded, new_layout), p, q
    )


def restrict_to(
    dm: DistributedMatrix, target: Layout
) -> DistributedMatrix:
    """Strip virtual rows/columns: keep the leading ``2^p x 2^q`` block.

    Like :func:`square_up`, a bookkeeping operation on the model's global
    view.
    """
    big = dm.to_global()
    P, Q = 1 << target.p, 1 << target.q
    if big.shape[0] < P or big.shape[1] < Q:
        raise ValueError("target is larger than the padded matrix")
    return DistributedMatrix.from_global(big[:P, :Q], target)


def padding_overhead(original_p: int, original_q: int) -> float:
    """Fraction of moved elements that are virtual after squaring up.

    The paper notes virtual elements need not be communicated; this is
    the upper bound on the communication an implementation exploiting
    that could save.
    """
    side = max(original_p, original_q)
    total = 1 << (2 * side)
    real = 1 << (original_p + original_q)
    return 1.0 - real / total
