"""Shuffle operators on whole address spaces (Definition 3, Lemmas 1-3).

A shuffle ``sh^1`` is a one-step left cyclic shift of the ``m``-bit address
of every element: ``loc(w_{m-1} ... w_0) <- loc(w_{m-2} ... w_0 w_{m-1})``.
Lemma 1 states that a ``2^p x 2^q`` matrix satisfies ``A^T = sh^p A``
(equivalently ``sh^{-q} A``); the exchange algorithms in the paper are
communication-efficient realizations of such shuffles on a cube.

Lemma 2/3 bound the Hamming distance an address can move under ``sh^k``:

    max_w Hamming(w, sh^k w) = m            if m / gcd(m, k) is even,
                               m - gcd(m,k) if m / gcd(m, k) is odd.

:func:`max_shuffle_hamming` implements the closed form; the tests verify it
against exhaustive search.
"""

from __future__ import annotations

import math

import numpy as np

from repro.codes.bits import rotate_left, rotate_right

__all__ = [
    "shuffle_address",
    "unshuffle_address",
    "shuffle_permutation",
    "max_shuffle_hamming",
]


def shuffle_address(value: int, width: int, k: int = 1) -> int:
    """Address reached by element ``value`` after ``k`` shuffles ``sh^k``.

    Under the paper's convention the element at location ``w`` moves to the
    location whose address is the left rotation of ``w``; i.e. the *new*
    address of datum originally at ``w`` is ``rotate_left(w, k, width)``.
    """
    return rotate_left(value, k, width)


def unshuffle_address(value: int, width: int, k: int = 1) -> int:
    """Address reached after ``k`` unshuffles ``sh^{-k}`` (right rotation)."""
    return rotate_right(value, k, width)


def shuffle_permutation(width: int, k: int = 1) -> np.ndarray:
    """Permutation array ``perm`` with ``perm[w] = sh^k(w)`` for all ``w``.

    The returned array has length ``2^width``; applying it to a flat data
    vector ``data[perm] = data`` realizes the shuffle on the full address
    space.  Vectorized: a rotation is two shifts and a mask.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    size = 1 << width
    w = np.arange(size, dtype=np.int64)
    if width == 0:
        return w
    kk = k % width
    if kk == 0:
        return w
    mask = size - 1
    return ((w << kk) | (w >> (width - kk))) & mask


def max_shuffle_hamming(width: int, k: int) -> int:
    """Closed form of Lemma 2: ``max_w Hamming(w, sh^k w)``.

    The bits split into ``gcd(m, k)`` independent cycles of length
    ``m / gcd(m, k)``; on an even cycle an alternating pattern flips every
    bit, on an odd cycle one bit per cycle must survive.
    """
    if width <= 0:
        return 0
    k %= width
    if k == 0:
        return 0
    g = math.gcd(width, k)
    if (width // g) % 2 == 0:
        return width
    return width - g
