"""Bit-level coding substrate for Boolean-cube address manipulation.

This subpackage implements the address arithmetic that Johnsson & Ho (1987)
build every algorithm on: Hamming distance (Definition 4), cyclic shifts of
bit fields (the shuffle operator :math:`sh^k` of Definition 3), bit
reversal, and the binary-reflected Gray code :math:`G` with its inverse.

All functions operate on plain Python integers interpreted as ``width``-bit
strings, and most have vectorized NumPy counterparts (suffix ``_array``)
used by the layout and simulation layers.
"""

from repro.codes.bits import (
    bit,
    bit_count,
    bit_reverse,
    bit_reverse_array,
    complement_bit,
    extract_field,
    hamming,
    hamming_array,
    insert_field,
    parity,
    parity_array,
    rotate_left,
    rotate_right,
    set_bit,
    swap_bits,
    to_bits,
    from_bits,
)
from repro.codes.gray import (
    gray_decode,
    gray_decode_array,
    gray_encode,
    gray_encode_array,
    gray_neighbors_differ_by_one_bit,
    gray_to_binary_path,
)
from repro.codes.shuffle import (
    max_shuffle_hamming,
    shuffle_permutation,
    shuffle_address,
    unshuffle_address,
)

__all__ = [
    "bit",
    "bit_count",
    "bit_reverse",
    "bit_reverse_array",
    "complement_bit",
    "extract_field",
    "from_bits",
    "gray_decode",
    "gray_decode_array",
    "gray_encode",
    "gray_encode_array",
    "gray_neighbors_differ_by_one_bit",
    "gray_to_binary_path",
    "hamming",
    "hamming_array",
    "insert_field",
    "max_shuffle_hamming",
    "parity",
    "parity_array",
    "rotate_left",
    "rotate_right",
    "set_bit",
    "shuffle_address",
    "shuffle_permutation",
    "swap_bits",
    "to_bits",
    "unshuffle_address",
]
