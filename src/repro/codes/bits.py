"""Fixed-width bit manipulation on integer addresses.

The paper encodes a matrix element ``(u, v)`` as the concatenated address
``w = (u || v)`` of ``m = p + q`` bits, and a processor as an ``n``-bit
address in the Boolean n-cube.  Every routing decision is a statement about
bits of these addresses, so this module is the foundation of the rest of
the library.

Conventions
-----------
* Bit ``0`` is the least-significant bit, matching the paper's
  ``(w_{m-1} w_{m-2} ... w_0)`` notation where ``w_0`` is written last.
* All functions take an explicit ``width`` where the result depends on it
  (rotations, reversals, complements); pure bit queries do not.
* ``*_array`` variants operate elementwise on NumPy integer arrays and are
  used on whole address spaces at once (vectorized per the HPC guide:
  masks and shifts instead of Python loops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bit",
    "bit_count",
    "bit_reverse",
    "bit_reverse_array",
    "complement_bit",
    "extract_field",
    "from_bits",
    "hamming",
    "hamming_array",
    "insert_field",
    "parity",
    "parity_array",
    "rotate_left",
    "rotate_right",
    "set_bit",
    "swap_bits",
    "to_bits",
]


def _check_width(width: int) -> None:
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")


def _check_value(value: int, width: int) -> None:
    if value < 0:
        raise ValueError(f"address must be non-negative, got {value}")
    if width >= 0 and value >> width:
        raise ValueError(f"address {value:#x} does not fit in {width} bits")


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 or 1)."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def set_bit(value: int, index: int, bit_value: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit_value``."""
    if bit_value not in (0, 1):
        raise ValueError(f"bit_value must be 0 or 1, got {bit_value}")
    mask = 1 << index
    return (value | mask) if bit_value else (value & ~mask)


def complement_bit(value: int, index: int) -> int:
    """Return ``value`` with bit ``index`` complemented.

    Complementing one address bit moves across one cube dimension
    (Definition 5): node ``x`` is adjacent to ``complement_bit(x, i)`` for
    every dimension ``i``.
    """
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return value ^ (1 << index)


def swap_bits(value: int, i: int, j: int) -> int:
    """Return ``value`` with bits ``i`` and ``j`` exchanged.

    This is the per-address effect of one step of the paper's exchange
    algorithms when the element stays on the same processor.
    """
    bi = bit(value, i)
    bj = bit(value, j)
    if bi == bj:
        return value
    return value ^ ((1 << i) | (1 << j))


def bit_count(value: int) -> int:
    """Population count of a non-negative integer."""
    if value < 0:
        raise ValueError("bit_count requires a non-negative integer")
    return int(value).bit_count()


def hamming(a: int, b: int) -> int:
    """Hamming distance between two addresses (Definition 4).

    ``Hamming(w, z) = popcount(w XOR z)``; this equals the length of the
    shortest path between nodes ``w`` and ``z`` in the Boolean cube.
    """
    return bit_count(a ^ b)


def hamming_array(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
    """Elementwise Hamming distance of integer arrays (vectorized)."""
    x = np.bitwise_xor(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
    return _popcount_array(x)


def _popcount_array(x: np.ndarray) -> np.ndarray:
    """Vectorized population count for int64 arrays via SWAR reduction."""
    x = x.astype(np.uint64, copy=True)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return ((x * h01) >> np.uint64(56)).astype(np.int64)


def parity(value: int) -> int:
    """Parity (popcount mod 2) of an address.

    Used by the combined transpose/code-conversion algorithm of §6.3, where
    column blocks with odd-parity indices undergo an extra vertical
    exchange.
    """
    return bit_count(value) & 1


def parity_array(values: np.ndarray) -> np.ndarray:
    """Vectorized parity of an integer array."""
    return _popcount_array(np.asarray(values, dtype=np.int64)) & 1


def rotate_left(value: int, k: int, width: int) -> int:
    """Left cyclic shift of a ``width``-bit address by ``k`` positions.

    This is the shuffle operator ``sh^k`` of Definition 3 applied to a
    single address:  ``loc(w_{m-1} ... w_0) <- loc(w_{m-2} ... w_0 w_{m-1})``
    means the *address* of the element moves by a left rotation.
    """
    _check_width(width)
    _check_value(value, width)
    if width == 0:
        return 0
    k %= width
    if k == 0:
        return value
    mask = (1 << width) - 1
    return ((value << k) | (value >> (width - k))) & mask


def rotate_right(value: int, k: int, width: int) -> int:
    """Right cyclic shift of a ``width``-bit address (``sh^{-k}``)."""
    _check_width(width)
    if width == 0:
        return 0
    return rotate_left(value, width - (k % width), width)


def bit_reverse(value: int, width: int) -> int:
    """Reverse the ``width``-bit representation of ``value``.

    Implements the bit-reversal permutation of §7:
    ``(x_{n-1} x_{n-2} ... x_0) <- (x_0 x_1 ... x_{n-1})``.
    """
    _check_width(width)
    _check_value(value, width)
    result = 0
    for i in range(width):
        result = (result << 1) | ((value >> i) & 1)
    return result


def bit_reverse_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized bit reversal of a ``width``-bit integer array."""
    _check_width(width)
    v = np.asarray(values, dtype=np.int64)
    out = np.zeros_like(v)
    for i in range(width):
        out = (out << 1) | ((v >> i) & 1)
    return out


def extract_field(value: int, low: int, size: int) -> int:
    """Extract ``size`` bits of ``value`` starting at bit ``low``.

    Address-field slicing: the paper repeatedly partitions an ``m``-bit
    element address into real-processor (``rp``) and virtual-processor
    (``vp``) subfields; this is the primitive those partitions use.
    """
    if low < 0 or size < 0:
        raise ValueError("field bounds must be non-negative")
    return (value >> low) & ((1 << size) - 1)


def insert_field(value: int, low: int, size: int, field: int) -> int:
    """Return ``value`` with bits ``[low, low+size)`` replaced by ``field``."""
    if low < 0 or size < 0:
        raise ValueError("field bounds must be non-negative")
    _check_value(field, size)
    mask = ((1 << size) - 1) << low
    return (value & ~mask) | (field << low)


def to_bits(value: int, width: int) -> tuple[int, ...]:
    """Return the bits of ``value`` as a tuple, most-significant first.

    Matches the paper's written order ``(w_{m-1} w_{m-2} ... w_0)``.
    """
    _check_width(width)
    _check_value(value, width)
    return tuple((value >> i) & 1 for i in range(width - 1, -1, -1))


def from_bits(bits: tuple[int, ...] | list[int]) -> int:
    """Inverse of :func:`to_bits`: assemble an integer from MSB-first bits."""
    value = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {b}")
        value = (value << 1) | b
    return value
