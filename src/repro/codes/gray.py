"""Binary-reflected Gray code.

The paper (following Reingold, Nievergelt & Deo [16]) embeds matrix rows
and columns in the cube either by the identity ("binary") encoding or by
the binary-reflected Gray code ``G``, which maps consecutive integers to
addresses at Hamming distance one and therefore preserves proximity of
adjacent rows/columns in the cube.

``G(w) = w XOR (w >> 1)`` and the inverse ``G^{-1}`` is a prefix-XOR scan.
Conversion between the two encodings on a cube takes ``n - 1`` routing
steps (§2); :func:`gray_to_binary_path` produces the per-step dimension
schedule used by the conversion and by the combined algorithm of §6.3.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gray_encode",
    "gray_decode",
    "gray_encode_array",
    "gray_decode_array",
    "gray_neighbors_differ_by_one_bit",
    "gray_to_binary_path",
]


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code ``G(value)``."""
    if value < 0:
        raise ValueError("Gray code is defined for non-negative integers")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse Gray code ``G^{-1}(code)`` via prefix XOR."""
    if code < 0:
        raise ValueError("Gray code is defined for non-negative integers")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def gray_encode_array(values: np.ndarray) -> np.ndarray:
    """Vectorized ``G`` over an integer array."""
    v = np.asarray(values, dtype=np.int64)
    return v ^ (v >> 1)


def gray_decode_array(codes: np.ndarray, width: int) -> np.ndarray:
    """Vectorized ``G^{-1}`` for ``width``-bit codes.

    Uses the logarithmic prefix-XOR trick: ``x ^= x >> 1; x ^= x >> 2; ...``
    doubling the shift until it covers ``width`` bits.
    """
    x = np.asarray(codes, dtype=np.int64).copy()
    shift = 1
    while shift < max(width, 1):
        x ^= x >> shift
        shift <<= 1
    return x


def gray_neighbors_differ_by_one_bit(width: int) -> bool:
    """Check the defining adjacency property of ``G`` on ``width`` bits.

    Returns True iff ``Hamming(G(i), G(i+1)) == 1`` for all consecutive
    ``i`` in ``[0, 2^width - 1)``.  Exposed primarily for tests and for
    documentation of the embedding property the paper relies on.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        return True
    idx = np.arange((1 << width) - 1, dtype=np.int64)
    g = gray_encode_array(idx)
    g_next = gray_encode_array(idx + 1)
    diff = g ^ g_next
    # A power of two has a single set bit: diff & (diff - 1) == 0, diff != 0.
    return bool(np.all((diff != 0) & ((diff & (diff - 1)) == 0)))


def gray_to_binary_path(code: int, width: int) -> list[int]:
    """Addresses visited converting Gray-coded ``code`` to binary, MSB-down.

    The paper's §6.3 observes that the binary-to-Gray (and inverse)
    conversion can proceed from the most significant bit to the least:
    after step ``j`` the top ``width - j`` bits agree with the target
    encoding.  The returned list starts at ``code`` and ends at
    ``gray_decode(code)``; consecutive entries differ in exactly one bit,
    so the list is a cube path of length at most ``width - 1``.
    """
    if code < 0:
        raise ValueError("code must be non-negative")
    if code >> width:
        raise ValueError(f"code {code:#x} does not fit in {width} bits")
    path = [code]
    current = code
    target = gray_decode(code)
    # Fix bits from the second-most-significant downward; bit width-1 of
    # G(w) already equals bit width-1 of w.
    for j in range(width - 2, -1, -1):
        desired = (target >> j) & 1
        if ((current >> j) & 1) != desired:
            current ^= 1 << j
            path.append(current)
    return path
