"""One-to-all personalized communication (§3.1): scatter from a root.

The root holds a private block for every node.  Routing follows a
spanning tree; the scheduling discipline determines the constant:

* ``"subtree"`` — send all data for one subtree as one message, largest
  subtree first ([5]'s one-port SBT schedule: time
  ``(1 - 1/N) PQ t_c + n tau`` when packets fit);
* ``"reverse-bfs"`` — send data for the deepest destinations first, one
  depth level per message, so every tree level relays concurrently
  (the n-port schedule for SBnT and rotated-SBT routing).

:func:`scatter_rotated_sbts` splits each node's data into ``n`` equal
parts and routes part ``k`` by the SBT rotated ``k`` steps — the §3.1
alternative achieving n-port lower-bound order with binomial trees.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from repro.cube.trees import SpanningTree, spanning_binomial_tree
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message

__all__ = [
    "personalized_data",
    "scatter_tree",
    "scatter_rotated_sbts",
    "scatter_sbnt",
]


def personalized_data(
    network: CubeNetwork,
    root: int,
    elements_per_node: int,
    *,
    parts: int = 1,
) -> None:
    """Load the root with one private block per (destination, part).

    Block ``("p13n", dst, i)`` carries ``elements_per_node // parts``
    elements whose values are all ``dst`` — so misdelivery is visible in
    the data itself, not only in the bookkeeping.
    """
    n = network.params.n
    if elements_per_node % parts:
        raise ValueError("elements_per_node must divide evenly into parts")
    size = elements_per_node // parts
    if size < 1:
        raise ValueError("each part needs at least one element")
    for dst in range(1 << n):
        if dst == root:
            continue
        for i in range(parts):
            network.place(
                root, Block(("p13n", dst, i), data=np.full(size, dst))
            )


def _destination(key: Hashable) -> int:
    return key[1]


def scatter_tree(
    network: CubeNetwork,
    tree: SpanningTree,
    *,
    dest_of: Callable[[Hashable], int] = _destination,
    schedule: str = "subtree",
    key_filter: Callable[[Hashable], bool] | None = None,
) -> int:
    """Scatter blocks held at the tree root down to their destinations.

    Every block at the root whose ``dest_of(key)`` is not the root is
    routed along the tree path.  Returns the number of phases used.
    ``key_filter`` restricts which root-held blocks participate (used by
    the rotated-SBT scatter to route each part on its own tree).
    """
    if schedule not in ("subtree", "reverse-bfs"):
        raise ValueError(f"unknown schedule {schedule!r}")
    root = tree.root
    mem = network.memory(root)
    keys = [
        k
        for k in mem.keys()
        if (key_filter is None or key_filter(k)) and dest_of(k) != root
    ]
    if not keys:
        return 0

    if schedule == "subtree":
        return _scatter_subtree(network, tree, keys, dest_of)
    return _scatter_reverse_bfs(network, tree, keys, dest_of)


def _child_of(tree: SpanningTree, node: int, dst: int) -> int:
    """The child of ``node`` whose subtree contains ``dst``."""
    path = tree.path_from_root(dst)
    idx = path.index(node)
    return path[idx + 1]


def _scatter_subtree(
    network: CubeNetwork,
    tree: SpanningTree,
    keys: list[Hashable],
    dest_of: Callable[[Hashable], int],
) -> int:
    # jobs[node] = ordered list of (child, keys); largest subtree first.
    sizes = {x: tree.subtree_size(x) for x in range(1 << tree.n)}

    def enqueue(node: int, incoming: list[Hashable]) -> list[tuple[int, list]]:
        by_child: dict[int, list[Hashable]] = {}
        for k in incoming:
            dst = dest_of(k)
            if dst == node:
                continue
            by_child.setdefault(_child_of(tree, node, dst), []).append(k)
        return sorted(by_child.items(), key=lambda cv: -sizes[cv[0]])

    jobs: dict[int, list[tuple[int, list]]] = {tree.root: enqueue(tree.root, keys)}
    phases = 0
    while any(jobs.values()):
        messages: list[Message] = []
        sent: list[tuple[int, int, list]] = []
        for node, queue in jobs.items():
            if queue:
                child, ks = queue.pop(0)
                messages.append(Message(node, child, tuple(ks)))
                sent.append((node, child, ks))
        network.execute_phase(messages)
        phases += 1
        for _, child, ks in sent:
            fresh = enqueue(child, ks)
            if fresh:
                jobs.setdefault(child, []).extend(fresh)
    return phases


def _scatter_reverse_bfs(
    network: CubeNetwork,
    tree: SpanningTree,
    keys: list[Hashable],
    dest_of: Callable[[Hashable], int],
) -> int:
    # Data for depth-d destinations crosses tree-path edge number l
    # (1-indexed) during phase (D - d) + l - 1; deepest data first, all
    # levels busy once the pipeline fills.
    depths = {k: tree.depth(dest_of(k)) for k in keys}
    max_depth = max(depths.values())
    paths = {k: tree.path_from_root(dest_of(k)) for k in keys}
    phases = 0
    for t in range(max_depth):
        # Group hop (src, dst) -> keys moving this phase.
        hops: dict[tuple[int, int], list[Hashable]] = {}
        for k in keys:
            d = depths[k]
            lvl = t - (max_depth - d) + 1
            if 1 <= lvl <= d:
                path = paths[k]
                hops.setdefault((path[lvl - 1], path[lvl]), []).append(k)
        messages = [
            Message(src, dst, tuple(ks)) for (src, dst), ks in hops.items()
        ]
        network.execute_phase(messages)
        phases += 1
    return phases


def scatter_rotated_sbts(
    network: CubeNetwork,
    root: int,
    *,
    parts: int | None = None,
    dest_of: Callable[[Hashable], int] = _destination,
) -> int:
    """Scatter via ``n`` rotated spanning binomial trees (§3.1).

    Each destination's data must be pre-split into ``parts`` blocks with
    the part index as the last key component (see
    :func:`personalized_data` with ``parts=n``); part ``i`` routes down
    the SBT rotated ``i`` steps.  With n-port communication the ``n``
    trees progress concurrently, cutting transfer time by ``~n`` over a
    single SBT.
    """
    n = network.params.n
    parts = n if parts is None else parts
    phases = 0
    trees = [
        spanning_binomial_tree(n, root=root, rotation=r) for r in range(parts)
    ]
    # Interleave: run all trees' schedules phase by phase so the port
    # model (not the code structure) decides concurrency.
    schedulers = [
        _ReverseBfsStepper(network, tree, dest_of, part)
        for part, tree in enumerate(trees)
    ]
    while any(not s.done for s in schedulers):
        messages: list[Message] = []
        for s in schedulers:
            messages.extend(s.next_phase_messages())
        network.execute_phase(messages)
        phases += 1
    return phases


class _ReverseBfsStepper:
    """Phase-at-a-time iterator of the reverse-BFS schedule for one tree."""

    def __init__(
        self,
        network: CubeNetwork,
        tree: SpanningTree,
        dest_of: Callable[[Hashable], int],
        part: int,
    ) -> None:
        mem = network.memory(tree.root)
        self.keys = [
            k
            for k in mem.keys()
            if len(k) >= 3 and k[2] == part and dest_of(k) != tree.root
        ]
        self.tree = tree
        self.dest_of = dest_of
        self.depths = {k: tree.depth(dest_of(k)) for k in self.keys}
        self.paths = {k: tree.path_from_root(dest_of(k)) for k in self.keys}
        self.max_depth = max(self.depths.values(), default=0)
        self.t = 0

    @property
    def done(self) -> bool:
        return self.t >= self.max_depth

    def next_phase_messages(self) -> list[Message]:
        if self.done:
            return []
        hops: dict[tuple[int, int], list[Hashable]] = {}
        for k in self.keys:
            d = self.depths[k]
            lvl = self.t - (self.max_depth - d) + 1
            if 1 <= lvl <= d:
                path = self.paths[k]
                hops.setdefault((path[lvl - 1], path[lvl]), []).append(k)
        self.t += 1
        return [Message(src, dst, tuple(ks)) for (src, dst), ks in hops.items()]


def scatter_sbnt(
    network: CubeNetwork,
    tree: SpanningTree,
    *,
    dest_of: Callable[[Hashable], int] = _destination,
) -> int:
    """Scatter down a spanning balanced n-tree, reverse-BFS scheduled.

    Convenience wrapper: the SBnT divides the node set into ``n`` nearly
    equal subtrees, so with n-port communication the transfer time drops
    by ``~n/2`` relative to SBT routing (§3.1).
    """
    return scatter_tree(network, tree, dest_of=dest_of, schedule="reverse-bfs")
