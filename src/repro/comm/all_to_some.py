"""All-to-some and some-to-all personalized communication (§3.3).

When the number of real-processor dimensions differs before and after a
rearrangement (``|R_b| != |R_a|``, with ``I`` empty) the transpose is a
``2^l``-to-``2^(l+k)`` (or reverse) personalized communication, built
from ``k`` steps of data splitting (one-to-all within k-subcubes) or
accumulation (all-to-one) plus ``l`` steps of all-to-all within
l-subcubes.

Theorem 1 fixes the profitable order: **splitting first** for
some-to-all and **accumulation last** for all-to-some — the all-to-all
steps then run on the smaller per-node volume.  Both orders are
implemented so the benches can measure the theorem's claim.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.comm.all_to_all import dimension_sweep
from repro.machine.engine import CubeNetwork

__all__ = ["some_to_all_scatter", "all_to_some_gather"]


def _destination(key: Hashable) -> int:
    return key[2]


def _check_dims(network: CubeNetwork, split_dims, a2a_dims) -> None:
    n = network.params.n
    s, a = set(split_dims), set(a2a_dims)
    if s & a:
        raise ValueError("splitting and all-to-all dimensions must be disjoint")
    for d in s | a:
        if not 0 <= d < n:
            raise ValueError(f"dimension {d} outside {n}-cube")


def some_to_all_scatter(
    network: CubeNetwork,
    split_dims: Sequence[int],
    a2a_dims: Sequence[int],
    *,
    dest_of: Callable[[Hashable], int] = _destination,
    split_first: bool = True,
) -> int:
    """Deliver data held by ``2^l`` sources to all ``2^(l+k)`` nodes.

    ``split_dims`` are the ``k`` dimensions along which the sources'
    data fans out (the sources occupy the subcube where those dimensions
    are 0); ``a2a_dims`` are the ``l`` dimensions of the all-to-all.
    ``split_first=True`` is Theorem 1's optimal order; ``False`` runs the
    all-to-all first (for measuring the difference).  Returns phases.
    """
    _check_dims(network, split_dims, a2a_dims)
    if split_first:
        phases = dimension_sweep(network, list(split_dims), dest_of=dest_of)
        phases += dimension_sweep(network, list(a2a_dims), dest_of=dest_of)
    else:
        phases = dimension_sweep(network, list(a2a_dims), dest_of=dest_of)
        phases += dimension_sweep(network, list(split_dims), dest_of=dest_of)
    return phases


def all_to_some_gather(
    network: CubeNetwork,
    gather_dims: Sequence[int],
    a2a_dims: Sequence[int],
    *,
    dest_of: Callable[[Hashable], int] = _destination,
    accumulate_last: bool = True,
) -> int:
    """Concentrate data from all ``2^(l+k)`` nodes onto ``2^l`` targets.

    ``gather_dims`` are the ``k`` accumulation dimensions (targets sit
    where those dimensions are 0).  ``accumulate_last=True`` is
    Theorem 1's optimal order.  Returns phases.
    """
    _check_dims(network, gather_dims, a2a_dims)
    if accumulate_last:
        phases = dimension_sweep(network, list(a2a_dims), dest_of=dest_of)
        phases += dimension_sweep(network, list(gather_dims), dest_of=dest_of)
    else:
        phases = dimension_sweep(network, list(gather_dims), dest_of=dest_of)
        phases += dimension_sweep(network, list(a2a_dims), dest_of=dest_of)
    return phases
