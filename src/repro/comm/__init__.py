"""Generic personalized communication on the cube (§3 of the paper).

*Personalized* communication means every (source, destination) pair has
its own private data — no broadcast sharing.  Three patterns appear:

* **one-to-all** (§3.1): a scatter from one root, routed by a spanning
  binomial tree (one-port optimal within 2x), by n rotated SBTs or by a
  spanning balanced n-tree (n-port optimal order);
* **all-to-all** (§3.2): every node sends a block to every node — the
  standard exchange algorithm (one-port optimal within 2x) or SBnT
  distributed routing (n-port);
* **all-to-some / some-to-all** (§3.3): ``k`` accumulation/splitting
  steps combined with ``l`` steps of all-to-all within subcubes, ordered
  per Theorem 1.

All functions move real blocks through a
:class:`~repro.machine.engine.CubeNetwork` and return nothing — time and
traffic are read off ``network.stats``.
"""

from repro.comm.one_to_all import (
    scatter_rotated_sbts,
    scatter_sbnt,
    scatter_tree,
    personalized_data,
)
from repro.comm.all_to_all import (
    all_to_all_exchange,
    all_to_all_personalized_data,
    all_to_all_pipelined_exchange,
    all_to_all_sbnt,
    all_to_all_sbnt_distributed,
)
from repro.comm.all_to_some import some_to_all_scatter, all_to_some_gather
from repro.comm.gather import gather_data, gather_tree

__all__ = [
    "all_to_all_exchange",
    "all_to_all_personalized_data",
    "all_to_all_pipelined_exchange",
    "all_to_all_sbnt",
    "all_to_all_sbnt_distributed",
    "all_to_some_gather",
    "gather_data",
    "gather_tree",
    "personalized_data",
    "scatter_rotated_sbts",
    "scatter_sbnt",
    "scatter_tree",
    "some_to_all_scatter",
]
