"""All-to-one personalized communication: gather to a root (§3.3's dual).

Every node holds a private block for the root; blocks flow up a spanning
tree, accumulating at each level.  The schedule is the time-reverse of
the scatter's "subtree at once" schedule: the complexity is symmetric
(receiving serializes at the root exactly as sending did), which is why
the paper treats one-to-all and all-to-one as the same primitive run
backwards.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from repro.cube.trees import SpanningTree
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message

__all__ = ["gather_data", "gather_tree"]


def gather_data(
    network: CubeNetwork, root: int, elements_per_node: int
) -> None:
    """Load every non-root node with one private block for the root.

    Block ``("a2o", src)`` carries values ``src`` so misdelivery shows in
    the payload.
    """
    n = network.params.n
    if elements_per_node < 1:
        raise ValueError("each node needs at least one element")
    for src in range(1 << n):
        if src == root:
            continue
        network.place(
            src, Block(("a2o", src), data=np.full(elements_per_node, src))
        )


def gather_tree(
    network: CubeNetwork,
    tree: SpanningTree,
    *,
    origin_of: Callable[[Hashable], int] = lambda key: key[1],
) -> int:
    """Drain all root-destined blocks up the tree; returns the phases.

    Phase construction mirrors the scatter: first compute the downward
    "subtree at once, largest first" schedule, then play it backwards
    with every hop reversed.  A reversed hop carries the blocks of the
    entire subtree behind it, so the root's last (and largest) arrival is
    the half-cube subtree — the mirror of the scatter's first send.
    """
    root = tree.root
    N = 1 << tree.n
    # Which blocks live where (for validation) and subtree membership.
    origins = [k for x in range(N) for k in network.memory(x).keys()]
    members: dict[int, set[int]] = {
        x: set(tree.subtree_nodes(x)) for x in range(N)
    }
    sizes = {x: tree.subtree_size(x) for x in range(N)}

    # Build the scatter-equivalent schedule: per phase, a set of
    # (parent, child, origin set) sends.
    jobs: dict[int, list[tuple[int, list[int]]]] = {}

    def enqueue(node: int, carried: list[int]) -> list[tuple[int, list[int]]]:
        by_child: dict[int, list[int]] = {}
        for origin in carried:
            if origin == node:
                continue
            for child in tree.children(node):
                if origin in members[child]:
                    by_child.setdefault(child, []).append(origin)
                    break
        return sorted(by_child.items(), key=lambda cv: -sizes[cv[0]])

    all_origins = [origin_of(k) for k in origins]
    jobs[root] = enqueue(root, all_origins)
    phases: list[list[tuple[int, int, list[int]]]] = []
    while any(jobs.values()):
        phase: list[tuple[int, int, list[int]]] = []
        sent: list[tuple[int, list[int]]] = []
        for node, queue in list(jobs.items()):
            if queue:
                child, org = queue.pop(0)
                phase.append((node, child, org))
                sent.append((child, org))
        phases.append(phase)
        for child, org in sent:
            fresh = enqueue(child, org)
            if fresh:
                jobs.setdefault(child, []).extend(fresh)

    # Play backwards: child -> parent, carrying its subtree's blocks.
    count = 0
    for phase in reversed(phases):
        messages = [
            Message(child, parent, tuple(("a2o", o) for o in org))
            for parent, child, org in phase
        ]
        network.execute_phase(messages)
        count += 1
    return count
