"""All-to-all personalized communication (§3.2).

Every node holds a private block for every other node.  Four algorithms:

* the **exchange algorithm**: scan the cube dimensions; at dimension
  ``d`` every node sends, in one combined message, all blocks it
  currently holds whose destination differs from it in bit ``d``.  Each
  step moves ``PQ / 2N`` elements per node; one-port time
  ``n (PQ/(2N) t_c + ceil(PQ/(2 N B_m)) tau)`` — within 2x of the lower
  bound.  The same dimension sweep with a subset of dimensions performs
  all-to-all within subcubes, and is reused by the §3.3 algorithms.

* the **pipelined exchange**: the same dimension order but greedy
  per-block advancement for n-port machines — which the paper calls out
  as *suboptimal* (the first hop funnels half of each node's traffic
  through one port).

* **SBnT routing** (route-precomputed): node ``s``'s block for ``d``
  leaves on port ``base(s XOR d)`` and crosses the set bits of
  ``s XOR d`` in ascending cyclic order; all blocks advance one hop per
  phase, so the whole operation takes ``n`` phases and, with n-port
  communication, ``PQ/(2N) t_c + n tau`` — the §3.2 n-port result.

* **SBnT distributed** (:func:`all_to_all_sbnt_distributed`): the same
  algorithm as the literal §5 pseudocode, per-node buffers only; kept
  as a fidelity cross-check (bit-identical behaviour, by test).
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import numpy as np

from repro.cube.trees import sbnt_route_dims
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message

__all__ = [
    "all_to_all_exchange",
    "all_to_all_personalized_data",
    "all_to_all_pipelined_exchange",
    "all_to_all_sbnt",
    "all_to_all_sbnt_distributed",
    "dimension_sweep",
]


def _destination(key: Hashable) -> int:
    return key[2]


def all_to_all_personalized_data(
    network: CubeNetwork, elements_per_pair: int
) -> None:
    """Load every node with a private block for every other node.

    Block ``("a2a", src, dst)`` carries values ``src * N + dst`` so both
    endpoints are encoded in the payload.
    """
    n = network.params.n
    N = 1 << n
    for src in range(N):
        for dst in range(N):
            if dst == src:
                continue
            network.place(
                src,
                Block(
                    ("a2a", src, dst),
                    data=np.full(elements_per_pair, src * N + dst),
                ),
            )


def dimension_sweep(
    network: CubeNetwork,
    dims: Sequence[int],
    *,
    dest_of: Callable[[Hashable], int] = _destination,
) -> int:
    """Sweep the given cube dimensions, forwarding blocks toward their
    destinations; returns the number of phases.

    This one loop is the paper's workhorse: over all ``n`` dimensions it
    is the all-to-all exchange algorithm; over ``k`` dimensions starting
    from concentrated data it is the splitting phase of some-to-all; run
    after an all-to-all it is the accumulation phase of all-to-some.
    """
    phases = 0
    n = network.params.n
    for d in dims:
        if not 0 <= d < n:
            raise ValueError(f"dimension {d} outside {n}-cube")
        messages: list[Message] = []
        for x in range(1 << n):
            mem = network.memory(x)
            moving = [
                k
                for k in mem.keys()
                if ((dest_of(k) >> d) & 1) != ((x >> d) & 1)
            ]
            if moving:
                messages.append(Message(x, x ^ (1 << d), tuple(moving)))
        network.execute_phase(messages)
        phases += 1
    return phases


def all_to_all_exchange(
    network: CubeNetwork,
    *,
    dest_of: Callable[[Hashable], int] = _destination,
    descending: bool = True,
) -> int:
    """The standard exchange algorithm over all cube dimensions."""
    n = network.params.n
    dims = range(n - 1, -1, -1) if descending else range(n)
    return dimension_sweep(network, list(dims), dest_of=dest_of)


def all_to_all_pipelined_exchange(
    network: CubeNetwork,
    *,
    dest_of: Callable[[Hashable], int] = _destination,
) -> int:
    """The exchange algorithm pipelined for n-port machines (§3.2).

    Instead of completing each dimension before starting the next, every
    block advances greedily: one hop per phase along its remaining
    differing dimensions in descending order, with all of a node's ports
    active concurrently.  The paper notes this "is suboptimal": the
    descending routing order funnels *half* of every node's blocks
    through its top port on the first hop, so the transfer term is
    bounded by ~M/(4N) per phase instead of the SBnT's balanced
    ~M/(2nN) — an n/2-fold handicap that
    ``bench_ablation_exchange_pipelining`` measures.
    """
    n = network.params.n
    N = 1 << n
    positions: dict[Hashable, int] = {}
    dests: dict[Hashable, int] = {}
    for x in range(N):
        for k in network.memory(x).keys():
            if dest_of(k) != x:
                positions[k] = x
                dests[k] = dest_of(k)
    phases = 0
    while positions:
        hops: dict[tuple[int, int], list[Hashable]] = {}
        arrived: list[Hashable] = []
        for k, src in positions.items():
            diff = src ^ dests[k]
            d = diff.bit_length() - 1  # highest remaining dimension
            dst = src ^ (1 << d)
            hops.setdefault((src, dst), []).append(k)
        messages = [
            Message(src, dst, tuple(ks)) for (src, dst), ks in hops.items()
        ]
        network.execute_phase(messages)
        phases += 1
        for (src, dst), ks in hops.items():
            for k in ks:
                if dst == dests[k]:
                    arrived.append(k)
                else:
                    positions[k] = dst
        for k in arrived:
            del positions[k]
    return phases


def all_to_all_sbnt_distributed(
    network: CubeNetwork,
    *,
    dest_of: Callable[[Hashable], int] = _destination,
) -> int:
    """The §5 SBnT pseudocode, transcribed: per-node state only.

    Each node forms, for every destination ``j``, a message carrying
    ``(source-addr, relative-addr, data)`` with
    ``relative-addr = my-addr XOR j XOR 2^b`` and appends it to
    ``output-buf[b]`` where ``b = base(my-addr XOR j)``.  Then ``n``
    rounds: send every output buffer across its port; for each received
    message, deliver if ``relative-addr = 0``, else complement the
    nearest 1-bit to the left (cyclically) of the arrival port and
    append to that port's buffer.  No node ever inspects global state —
    this is the algorithm as a 1987 node program would run it, and the
    tests check it is *identical* in deliveries and phases to the
    route-precomputing :func:`all_to_all_sbnt`.
    """
    from repro.cube.trees import rotation_base

    n = network.params.n
    N = 1 << n
    # output_buf[node][port] -> list of (key, relative_addr)
    output_buf: list[list[list[tuple[Hashable, int]]]] = [
        [[] for _ in range(n)] for _ in range(N)
    ]
    for my_addr in range(N):
        for key in network.memory(my_addr).keys():
            j = dest_of(key)
            if j == my_addr:
                continue
            b = rotation_base(my_addr ^ j, n)
            rel = my_addr ^ j ^ (1 << b)
            output_buf[my_addr][b].append((key, rel))

    phases = 0
    for _ in range(n):
        sends: list[tuple[int, int, list[tuple[Hashable, int]]]] = []
        for x in range(N):
            for port in range(n):
                if output_buf[x][port]:
                    sends.append((x, x ^ (1 << port), output_buf[x][port]))
                    output_buf[x][port] = []
        if not sends:
            break
        network.execute_phase(
            [
                Message(src, dst, tuple(k for k, _ in items))
                for src, dst, items in sends
            ]
        )
        phases += 1
        for src, dst, items in sends:
            arrival_port = (src ^ dst).bit_length() - 1
            for key, rel in items:
                if rel == 0:
                    continue  # delivered: stays in dst's memory
                # Nearest 1-bit to the left of the arrival port, cyclic.
                p = None
                for step in range(1, n + 1):
                    cand = (arrival_port + step) % n
                    if (rel >> cand) & 1:
                        p = cand
                        break
                assert p is not None
                output_buf[dst][p].append((key, rel ^ (1 << p)))
    return phases


def all_to_all_sbnt(
    network: CubeNetwork,
    *,
    dest_of: Callable[[Hashable], int] = _destination,
) -> int:
    """All-to-all by distributed SBnT routing (the §5 pseudocode).

    Every block's route is the SBnT route for its (source XOR
    destination); in phase ``t`` every block at route position ``t``
    advances one hop, grouped into one message per (node, port).  All
    routes finish within ``n`` phases.  Under the n-port model each
    node's ``n`` ports work concurrently, which is the point of the
    balanced tree: per-port traffic is ``~(N-1)/n`` blocks.
    """
    n = network.params.n
    N = 1 << n
    # Precompute each block's route from its current holder.
    routes: dict[Hashable, list[int]] = {}
    positions: dict[Hashable, int] = {}
    for x in range(N):
        for k in network.memory(x).keys():
            rel = x ^ dest_of(k)
            if rel == 0:
                continue
            routes[k] = sbnt_route_dims(rel, n)
            positions[k] = x
    max_len = max((len(r) for r in routes.values()), default=0)
    for t in range(max_len):
        hops: dict[tuple[int, int], list[Hashable]] = {}
        for k, route in routes.items():
            if t < len(route):
                src = positions[k]
                dst = src ^ (1 << route[t])
                hops.setdefault((src, dst), []).append(k)
                positions[k] = dst
        messages = [
            Message(src, dst, tuple(ks)) for (src, dst), ks in hops.items()
        ]
        network.execute_phase(messages)
    return max_len
