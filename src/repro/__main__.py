"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``advise``    rank the paper's algorithms for a machine/problem size
              (the §9 decision procedure);
``run``       execute one simulated transpose and print the cost report;
``machines``  show the calibrated machine presets.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _machine(args):
    from repro.machine.presets import connection_machine, custom_machine, intel_ipsc

    if args.machine == "ipsc":
        return intel_ipsc(args.n)
    if args.machine == "cm":
        return connection_machine(args.n)
    from repro.machine.params import PortModel

    return custom_machine(
        args.n,
        tau=args.tau,
        t_c=args.t_c,
        port_model=PortModel.N_PORT if args.n_port else PortModel.ONE_PORT,
    )


def cmd_advise(args) -> int:
    from repro.analysis.report import format_report

    print(format_report(_machine(args), args.elements))
    return 0


def cmd_run(args) -> int:
    from repro import CubeNetwork, DistributedMatrix, transpose
    from repro.layout import partition as pt
    from repro.machine.faults import FaultError, FaultPlan, RoutingStalledError

    bits = args.elements.bit_length() - 1
    if 1 << bits != args.elements:
        print("element count must be a power of two", file=sys.stderr)
        return 2
    p = bits // 2
    q = bits - p
    n = args.n
    if args.layout == "2d":
        if n % 2:
            print("2d layout needs an even cube dimension", file=sys.stderr)
            return 2
        layout = pt.two_dim_cyclic(p, q, n // 2, n // 2)
    elif args.layout == "1d-rows":
        layout = pt.row_consecutive(p, q, n)
    else:
        layout = pt.column_cyclic(p, q, n)

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.from_spec(n, args.faults)
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2

    rng = np.random.default_rng(0)
    A = rng.standard_normal((1 << p, 1 << q))
    net = CubeNetwork(_machine(args), faults=faults)
    try:
        result = transpose(
            net,
            DistributedMatrix.from_global(A, layout),
            pt.two_dim_cyclic(q, p, n // 2, n // 2)
            if args.layout == "2d" and p != q
            else None
            if p == q
            else _mirror(layout),
            algorithm=args.algorithm,
        )
    except (FaultError, RoutingStalledError) as exc:
        print(f"transpose failed under faults: {exc}", file=sys.stderr)
        return 1
    ok = result.verify_against(A)
    print(f"matrix:     {1 << p} x {1 << q} ({args.elements} elements)")
    print(f"layout:     {layout.describe()}")
    print(f"machine:    {net.params.name} ({net.params.port_model.value})")
    print(f"algorithm:  {result.algorithm} ({result.comm_class.value})")
    if faults is not None:
        print(f"faults:     {faults.describe()}")
        if result.degraded:
            print(
                f"degraded:   {result.requested} -> {result.algorithm} "
                f"(skipped {', '.join(result.fallbacks)}); recovery "
                f"overhead {result.recovery_overhead * 1e3:.3f} ms"
            )
    print(f"verified:   {ok}")
    print(f"model time: {result.stats.summary()}")
    return 0 if ok else 1


def _mirror(layout):
    """Same-family layout for the transposed (rectangular) matrix."""
    from repro.layout import partition as pt

    name = layout.name
    p, q, n = layout.q, layout.p, layout.n
    if name.startswith("row-consecutive"):
        return pt.row_consecutive(p, q, n)
    if name.startswith("col-cyclic"):
        return pt.column_cyclic(p, q, n)
    raise ValueError(f"no mirror for layout {name}")


def cmd_machines(args) -> int:
    from repro.machine.presets import connection_machine, intel_ipsc

    for m in (intel_ipsc(args.n), connection_machine(args.n)):
        print(
            f"{m.name}: tau={m.tau * 1e6:.0f} us, t_c={m.t_c * 1e6:.2f} us/el, "
            f"B_m={m.packet_capacity} el, t_copy={m.t_copy * 1e6:.1f} us/el, "
            f"{m.port_model.value}, pipelined={m.pipelined}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matrix transposition on simulated Boolean n-cubes "
        "(Johnsson & Ho 1987 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--machine", choices=["ipsc", "cm", "custom"], default="ipsc")
        p.add_argument("-n", type=int, default=6, help="cube dimension")
        p.add_argument("--tau", type=float, default=1.0, help="custom start-up")
        p.add_argument("--t-c", dest="t_c", type=float, default=1.0)
        p.add_argument("--n-port", action="store_true")
        p.add_argument(
            "--elements", type=int, default=1 << 16, help="matrix elements (power of 2)"
        )

    pa = sub.add_parser("advise", help="rank algorithms analytically (§9)")
    common(pa)
    pa.set_defaults(fn=cmd_advise)

    pr = sub.add_parser("run", help="run one simulated transpose")
    common(pr)
    pr.add_argument("--layout", choices=["2d", "1d-rows", "1d-cols"], default="2d")
    pr.add_argument(
        "--algorithm",
        default="auto",
        help="strategy name (default auto; e.g. spt, dpt, mpt, router)",
    )
    pr.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="reproducible fault scenario as comma-separated key=value: "
        "seed=S, link_rate=R, transient_rate=R, window=W, "
        "nodes=3+9, links=0-1+6-4 (see FaultPlan.from_spec)",
    )
    pr.set_defaults(fn=cmd_run)

    pm = sub.add_parser("machines", help="show machine presets")
    pm.add_argument("-n", type=int, default=6)
    pm.set_defaults(fn=cmd_machines)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
