"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``advise``    rank the paper's algorithms for a machine/problem size
              (the §9 decision procedure);
``run``       execute one simulated transpose and print the cost report;
``machines``  show the calibrated machine presets;
``plan``      compile a transpose into a :class:`CompiledPlan` document;
``replay``    execute a compiled plan on a fresh (optionally faulted)
              network without re-planning — ``--recover`` resumes from
              checkpoints instead of restarting on faults;
``batch``     serve many transpose requests through the plan cache;
``chaos``     soak seeded random fault plans through live runs and
              recovery replays, verifying every outcome;
``baseline``  record or check the pinned perf-regression suite;
``serve``     run the multi-tenant serving layer over a request file;
``loadgen``   drive a server with seeded synthetic traffic and verify
              a sample of outcomes bit-identically against solo runs.

``run`` and ``plan`` also accept ``--workload SPEC`` to execute or
compile a composite permutation pipeline (``repro.workloads`` grammar,
e.g. ``pipeline:bitrev+transpose@13x11`` or ``fft@64x64``) instead of a
plain transpose, and ``loadgen --workload`` mixes pipeline requests
into the synthetic stream.

``advise``, ``run``, ``machines``, ``plan``, ``replay``, ``batch``,
``chaos``, ``serve`` and ``loadgen`` accept ``--json`` for
machine-readable output.  Every ``--json`` document shares one
envelope::

    {"schema_version": 1, "command": "<name>", "result": {...}}

so consumers can dispatch on ``command`` and version-gate on
``schema_version`` instead of sniffing per-command shapes.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

#: Version of the shared ``--json`` envelope.  Bump when the envelope
#: itself (not a command's ``result`` payload) changes shape.
JSON_SCHEMA_VERSION = 1


def emit_json(command: str, result) -> None:
    """Print one machine-readable document in the unified envelope."""
    doc = {
        "schema_version": JSON_SCHEMA_VERSION,
        "command": command,
        "result": result,
    }
    print(json.dumps(doc, indent=2))


def _machine(args):
    from repro.machine.presets import connection_machine, custom_machine, intel_ipsc

    if args.machine == "ipsc":
        return intel_ipsc(args.n)
    if args.machine == "cm":
        return connection_machine(args.n)
    from repro.machine.params import PortModel

    return custom_machine(
        args.n,
        tau=args.tau,
        t_c=args.t_c,
        port_model=PortModel.N_PORT if args.n_port else PortModel.ONE_PORT,
    )


def cmd_advise(args) -> int:
    from repro.analysis.report import format_report, report_data

    if args.json:
        emit_json("advise", report_data(_machine(args), args.elements))
    else:
        print(format_report(_machine(args), args.elements))
    return 0


def _stats_recovery_block(stats, *, resolved: str) -> dict:
    """The ``recovery`` JSON block for runs accounted through TransferStats."""
    return {
        "resolved": resolved,
        "fault_encounters": stats.fault_events,
        "checkpoints": stats.checkpoints,
        "rollbacks": stats.rollbacks,
        "replayed_phases": stats.replayed_phases,
        "wasted_elements": stats.wasted_elements,
        "backoff_phases": stats.stall_phases,
    }


def _resolve_problem(args):
    """CLI-side wrapper: bad problem parameters exit with status 2."""
    from repro.plans.batch import resolve_problem

    try:
        return resolve_problem(args.n, args.elements, args.layout)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None


def _topology(args):
    """Resolve ``--topology`` against ``-n``; None means bad input.

    A non-cube topology fixes the node count, so it wins over ``-n``:
    the cube dimension is re-derived as log2(nodes) and must be exact —
    the transpose algorithms address nodes by bit fields.
    """
    from repro.topology import TopologyError, parse_topology

    try:
        topo = parse_topology(getattr(args, "topology", None), args.n)
    except TopologyError as exc:
        print(f"bad --topology spec: {exc}", file=sys.stderr)
        return None
    if topo.num_nodes != 1 << args.n:
        count = topo.num_nodes
        derived = count.bit_length() - 1
        if 1 << derived != count:
            print(
                f"topology {topo.spec!r} has {count} nodes, which is not "
                "a power of two; the transpose algorithms need 2^n nodes",
                file=sys.stderr,
            )
            return None
        args.n = derived
    return topo


def _build_cli_pipeline(args, topo):
    """Materialize ``--workload`` against the CLI problem; None = bad input."""
    from repro.workloads import build_pipeline

    if topo.name != "cube":
        print(
            "workload pipelines require the cube topology "
            f"(requested {topo.spec!r})",
            file=sys.stderr,
        )
        return None
    try:
        return build_pipeline(
            args.workload, args.n, layout=args.layout,
            elements=args.elements,
        )
    except ValueError as exc:
        print(f"bad --workload spec: {exc}", file=sys.stderr)
        return None


def _run_workload(args, topo) -> int:
    """``repro run --workload``: execute a pipeline on real data."""
    from repro import CubeNetwork
    from repro.machine.faults import FaultError, FaultPlan, RoutingStalledError

    pipeline = _build_cli_pipeline(args, topo)
    if pipeline is None:
        return 2
    faults = None
    if args.faults:
        try:
            faults = FaultPlan.from_spec(args.n, args.faults)
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2

    trace_sink = instr = None
    if args.trace:
        from repro.obs import ChromeTraceSink, Instrumentation

        trace_sink = ChromeTraceSink()
        instr = Instrumentation(trace_sink)

    served = None
    if faults is not None:
        # Pipelines have no degradation ladder; faulted runs go through
        # the checkpointed recovery executor, exactly like the server.
        from repro.plans.cache import PlanCache
        from repro.recovery import RecoveryFailedError
        from repro.workloads import serve_workload

        try:
            served = serve_workload(
                pipeline,
                _machine(args),
                faults=faults,
                cache=PlanCache(),
                observer=instr,
            )
        except (FaultError, RoutingStalledError, RecoveryFailedError) as exc:
            print(f"workload failed under faults: {exc}", file=sys.stderr)
            return 1
        stats = served.stats
        ok = bool(served.verified)
    else:
        rng = np.random.default_rng(0)
        A = rng.standard_normal((pipeline.shape.rows, pipeline.shape.cols))
        net = CubeNetwork(_machine(args))
        if instr is not None:
            instr.attach(net)
        result = pipeline.execute(net, A)
        stats = net.stats
        ok = bool(np.array_equal(result, pipeline.reference(A)))

    if trace_sink is not None:
        trace_sink.write(args.trace)
        print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
    shape = pipeline.shape
    if args.json:
        doc = {
            "workload": pipeline.spec,
            "rows": shape.rows,
            "cols": shape.cols,
            "padded_rows": shape.padded_rows,
            "padded_cols": shape.padded_cols,
            "stages": [s.describe() for s in pipeline.stages],
            "machine": _machine(args).name,
            "port_model": _machine(args).port_model.value,
            "topology": topo.spec,
            "algorithm": pipeline.algorithm,
            "faults": None if faults is None else faults.describe(),
            "verified": ok,
            "stats": stats.as_dict(),
        }
        if served is not None:
            doc["resolved"] = served.resolved
            doc["recovery"] = (
                None if served.recovery is None else served.recovery.as_dict()
            )
        emit_json("run", doc)
        return 0 if ok else 1
    params = _machine(args)
    print(
        f"workload:   {pipeline.spec} "
        f"({shape.rows} x {shape.cols}, padded to "
        f"{shape.padded_rows} x {shape.padded_cols})"
    )
    print(f"machine:    {params.name} ({params.port_model.value})")
    print(f"algorithm:  {pipeline.algorithm}")
    if faults is not None:
        print(f"faults:     {faults.describe()}")
    if served is not None:
        rec = served.recovery
        print(f"resolved:   {served.resolved}")
        if rec is not None:
            print(
                f"recovery:   {rec.checkpoints_taken} checkpoint(s), "
                f"{rec.rollbacks} rollback(s), "
                f"{rec.replayed_phases} replayed phase(s)"
            )
    print(f"verified:   {ok}")
    print(f"model time: {stats.summary()}")
    return 0 if ok else 1


def cmd_run(args) -> int:
    from repro import CubeNetwork, DistributedMatrix, transpose
    from repro.machine.faults import FaultError, FaultPlan, RoutingStalledError

    topo = _topology(args)
    if topo is None:
        return 2
    if args.workload:
        return _run_workload(args, topo)
    on_cube = topo.name == "cube"
    resolved = _resolve_problem(args)
    if resolved is None:
        return 2
    layout, after = resolved

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.from_spec(
                args.n, args.faults, topology=None if on_cube else topo
            )
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2

    rng = np.random.default_rng(0)
    A = rng.standard_normal((1 << layout.p, 1 << layout.q))
    net = CubeNetwork(_machine(args), faults=faults, topology=topo)
    if args.checkpoint_every:
        from repro.recovery import CheckpointManager

        net.checkpoints = CheckpointManager(every=args.checkpoint_every)

    recorder = trace_sink = None
    if args.trace or args.timeline:
        from repro.machine.trace import TraceRecorder
        from repro.obs import ChromeTraceSink, Instrumentation

        sinks = []
        if args.trace:
            trace_sink = ChromeTraceSink()
            sinks.append(trace_sink)
        if args.timeline:
            recorder = TraceRecorder()
            sinks.append(recorder)
        Instrumentation(*sinks).attach(net)

    try:
        result = transpose(
            net,
            DistributedMatrix.from_global(A, layout),
            after,
            algorithm=args.algorithm,
        )
    except (FaultError, RoutingStalledError) as exc:
        print(f"transpose failed under faults: {exc}", file=sys.stderr)
        return 1
    ok = result.verify_against(A)

    if trace_sink is not None:
        trace_sink.write(args.trace)
        print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
    if args.json:
        doc = {
            "rows": 1 << layout.p,
            "cols": 1 << layout.q,
            "elements": args.elements,
            "layout": layout.describe(),
            "machine": net.params.name,
            "port_model": net.params.port_model.value,
            "topology": topo.spec,
            "algorithm": result.algorithm,
            "comm_class": result.comm_class.value,
            "requested": result.requested,
            "degraded": result.degraded,
            "fallbacks": list(result.fallbacks),
            "recovery_overhead": result.recovery_overhead,
            "faults": None if faults is None else faults.describe(),
            "verified": ok,
            "recovery": _stats_recovery_block(
                result.stats,
                resolved="ladder" if result.fallbacks else "clean",
            ),
            "stats": result.stats.as_dict(),
        }
        emit_json("run", doc)
        return 0 if ok else 1
    print(f"matrix:     {1 << layout.p} x {1 << layout.q} ({args.elements} elements)")
    print(f"layout:     {layout.describe()}")
    print(f"machine:    {net.params.name} ({net.params.port_model.value})")
    if not on_cube:
        print(f"topology:   {topo.describe()}")
    print(f"algorithm:  {result.algorithm} ({result.comm_class.value})")
    if faults is not None:
        print(f"faults:     {faults.describe()}")
        if result.degraded:
            print(
                f"degraded:   {result.requested} -> {result.algorithm} "
                f"(skipped {', '.join(result.fallbacks)}); recovery "
                f"overhead {result.recovery_overhead * 1e3:.3f} ms"
            )
        if result.stats.rollbacks or result.stats.checkpoints:
            print(
                f"recovery:   {result.stats.checkpoints} checkpoint(s), "
                f"{result.stats.rollbacks} rollback(s), "
                f"{result.stats.replayed_phases} replayed phase(s), "
                f"{result.stats.wasted_elements} wasted element(s)"
            )
    print(f"verified:   {ok}")
    print(f"model time: {result.stats.summary()}")
    if args.heatmap:
        print()
        if on_cube:
            from repro.analysis.report import format_link_heatmap

            print(format_link_heatmap(result.stats, net.params.n))
        else:
            from repro.analysis.report import format_topology_heatmap

            print(format_topology_heatmap(result.stats, topo))
    if recorder is not None:
        from repro.analysis.report import format_congestion_timeline

        print()
        print(format_congestion_timeline(recorder.events))
    return 0 if ok else 1


def cmd_machines(args) -> int:
    from repro.machine.presets import connection_machine, intel_ipsc

    presets = (intel_ipsc(args.n), connection_machine(args.n))
    if args.json:
        from repro.plans.ir import MachineSpec

        emit_json(
            "machines",
            [MachineSpec.from_params(m).as_dict() for m in presets],
        )
        return 0
    for m in presets:
        print(
            f"{m.name}: tau={m.tau * 1e6:.0f} us, t_c={m.t_c * 1e6:.2f} us/el, "
            f"B_m={m.packet_capacity} el, t_copy={m.t_copy * 1e6:.1f} us/el, "
            f"{m.port_model.value}, pipelined={m.pipelined}"
        )
    return 0


def cmd_plan(args) -> int:
    from repro.plans import capture_transpose, plan_key, synthetic_matrix
    from repro.plans.cache import PlanCache

    topo = _topology(args)
    if topo is None:
        return 2
    params = _machine(args)
    if args.workload:
        pipeline = _build_cli_pipeline(args, topo)
        if pipeline is None:
            return 2
        plan, _ = pipeline.compile(params)
        key = pipeline.key(params)
    else:
        resolved = _resolve_problem(args)
        if resolved is None:
            return 2
        before, after = resolved
        _, plan = capture_transpose(
            params,
            synthetic_matrix(before),
            after,
            algorithm=args.algorithm,
            topology=topo,
        )
        key = plan_key(
            params, before, after, plan.algorithm, topology=topo.spec
        )
    if args.cache_dir:
        PlanCache(path=args.cache_dir).put(key, plan)
        print(f"cached {plan.describe()}", file=sys.stderr)
        print(key)
    elif args.out:
        with open(args.out, "w") as fh:
            fh.write(plan.dumps(indent=2))
        print(
            f"wrote {args.out}: {plan.describe()} "
            f"(fingerprint {plan.fingerprint[:16]})",
            file=sys.stderr,
        )
    elif args.json:
        doc = json.loads(plan.dumps())
        doc["key"] = key
        emit_json("plan", doc)
    else:
        print(plan.dumps(indent=2))
    return 0


def cmd_replay(args) -> int:
    from repro import CubeNetwork
    from repro.machine.faults import FaultError, FaultPlan, RoutingStalledError
    from repro.plans.ir import CompiledPlan, PlanError
    from repro.plans.replay import PlanReplayError, replay_plan
    from repro.topology import parse_topology

    try:
        with open(args.plan) as fh:
            plan = CompiledPlan.loads(fh.read())
    except (OSError, PlanError) as exc:
        print(f"cannot load plan: {exc}", file=sys.stderr)
        return 2

    # Replay on the interconnect the plan was compiled for.
    topo = parse_topology(plan.machine.topology, plan.machine.n)
    on_cube = topo.name == "cube"
    if args.recover is not None and not on_cube:
        print(
            f"bad --recover: the plan targets topology {topo.spec!r}; "
            "resume-based recovery rewrites cube schedules only",
            file=sys.stderr,
        )
        return 2

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.from_spec(
                plan.machine.n,
                args.faults,
                topology=None if on_cube else topo,
            )
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2

    recovery_doc = None
    verified = None
    network = CubeNetwork(plan.machine.to_params(), faults=faults, topology=topo)
    if args.recover is not None:
        from repro.recovery import (
            RecoveryFailedError,
            RecoveryPolicy,
            execute_with_recovery,
        )

        try:
            policy = RecoveryPolicy.from_spec(args.recover)
            if args.checkpoint_every:
                policy = policy.with_(checkpoint_every=args.checkpoint_every)
        except ValueError as exc:
            print(f"bad --recover spec: {exc}", file=sys.stderr)
            return 2
        try:
            outcome = execute_with_recovery(plan, network, policy=policy)
        except PlanReplayError as exc:
            print(f"replay rejected: {exc}", file=sys.stderr)
            return 2
        except RecoveryFailedError as exc:
            print(f"recovery failed: {exc}", file=sys.stderr)
            recovery_doc = exc.report.as_dict()
            if args.json:
                doc = {
                    "plan": plan.describe(),
                    "algorithm": plan.algorithm,
                    "fingerprint": plan.fingerprint,
                    "faults": None if faults is None else faults.describe(),
                    "recovery": recovery_doc,
                    "verified": False,
                    "stats": network.stats.as_dict(),
                }
                emit_json("replay", doc)
            return 1
        recovery_doc = outcome.report.as_dict()
        verified = outcome.verified
    else:
        checkpoints = None
        if args.checkpoint_every:
            from repro.recovery import CheckpointManager

            checkpoints = CheckpointManager(every=args.checkpoint_every)
        try:
            replay_plan(plan, network, checkpoints=checkpoints)
        except PlanReplayError as exc:
            print(f"replay rejected: {exc}", file=sys.stderr)
            return 2
        except (FaultError, RoutingStalledError) as exc:
            print(f"replay failed under faults: {exc}", file=sys.stderr)
            return 1
        if faults is not None or args.checkpoint_every:
            recovery_doc = _stats_recovery_block(
                network.stats, resolved="clean"
            )
    if args.json:
        doc = {
            "plan": plan.describe(),
            "algorithm": plan.algorithm,
            "fingerprint": plan.fingerprint,
            "faults": None if faults is None else faults.describe(),
            "recovery": recovery_doc,
            "verified": verified,
            "stats": network.stats.as_dict(),
        }
        emit_json("replay", doc)
        return 0 if verified is not False else 1
    print(f"plan:       {plan.describe()}")
    if faults is not None:
        print(f"faults:     {faults.describe()}")
    if recovery_doc is not None and args.recover is not None:
        print(
            f"recovery:   resolved={recovery_doc['resolved']}, "
            f"{recovery_doc['fault_encounters']} fault(s), "
            f"{recovery_doc['checkpoints_taken']} checkpoint(s), "
            f"{recovery_doc['rollbacks']} rollback(s), "
            f"{recovery_doc['replayed_phases']} replayed phase(s)"
        )
        print(f"verified:   {verified}")
    print(f"model time: {network.stats.summary()}")
    return 0 if verified is not False else 1


def cmd_batch(args) -> int:
    from repro.plans.batch import BatchRequest, run_batch
    from repro.plans.cache import PlanCache

    try:
        with open(args.requests) as fh:
            docs = json.load(fh)
        if not isinstance(docs, list):
            raise ValueError("requests file must hold a JSON array")
        requests = [BatchRequest.from_dict(d) for d in docs]
    except (OSError, ValueError, TypeError) as exc:
        print(f"cannot load requests: {exc}", file=sys.stderr)
        return 2

    recovery = None
    if args.recover is not None:
        from repro.recovery import RecoveryPolicy

        try:
            recovery = RecoveryPolicy.from_spec(args.recover)
        except ValueError as exc:
            print(f"bad --recover spec: {exc}", file=sys.stderr)
            return 2

    cache = PlanCache(capacity=args.cache_size, path=args.cache_dir)
    reports = [
        run_batch(requests, cache=cache, recovery=recovery)
        for _ in range(args.repeat)
    ]
    if args.json:
        doc = {
            "runs": [r.as_dict() for r in reports],
            "cache": cache.counters(),
        }
        emit_json("batch", doc)
        return 0
    for i, report in enumerate(reports, 1):
        print(f"run {i}: {report.summary()}")
    c = cache.counters()
    print(
        f"cache: {c['hits']} hit(s), {c['misses']} miss(es), "
        f"{c['evictions']} eviction(s), {c['resident']} resident"
    )
    return 0


def _parse_watchdog(value):
    """``--watchdog`` seconds, with ``off``/``none`` disabling it."""
    if value is None:
        return None
    text = str(value).strip().lower()
    if text in ("off", "none", ""):
        return None
    return float(value)


def cmd_service_chaos(args) -> int:
    """``repro chaos --service``: batter the serving stack itself."""
    from repro.service import ServerConfig, ServiceChaosSpec, run_service_chaos

    try:
        spec = ServiceChaosSpec(
            seed=args.seed,
            requests=args.requests,
            tenants=args.tenants,
            n=args.n,
            kill_rate=args.kill_rate,
            hang_rate=args.hang_rate,
            hang_seconds=args.hang_seconds,
            poison_rate=args.poison_rate,
            crash_rate=args.crash_rate,
            slow_rate=args.slow_rate,
            verify_sample=args.verify_sample,
        )
        config = ServerConfig(
            workers=args.workers,
            retries=args.retries,
            watchdog=_parse_watchdog(args.watchdog),
            supervise=None if not args.no_supervise else False,
            poison_threshold=args.poison_threshold,
        )
    except ValueError as exc:
        print(f"bad service chaos spec: {exc}", file=sys.stderr)
        return 2
    report = run_service_chaos(spec, config)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.events_out:
        _write_json(
            args.events_out,
            report.supervisor_events,
            label="supervisor event log",
        )
    ok = report.ok
    if args.expect_worker_loss:
        # The disabled-resilience arm: the soak must still resolve
        # everything exactly once, AND demonstrably lose workers —
        # proving the supervisor (absent here) is what saves the pool.
        ok = ok and report.workers_lost > 0
    if args.json:
        doc = report.as_dict()
        doc["ok"] = ok
        emit_json("chaos", doc)
    else:
        print(report.summary())
        if args.expect_worker_loss and report.workers_lost == 0:
            print(
                "expected worker loss with resilience disabled, saw none",
                file=sys.stderr,
            )
    return 0 if ok else 1


def cmd_chaos(args) -> int:
    from repro.recovery import RecoveryPolicy, run_chaos

    if args.service:
        return cmd_service_chaos(args)
    topo = _topology(args)
    if topo is None:
        return 2
    try:
        policy = RecoveryPolicy.from_spec(args.recover or "")
    except ValueError as exc:
        print(f"bad --recover spec: {exc}", file=sys.stderr)
        return 2
    if args.modes is None:
        # Recovery replays rewrite cube schedules, so the default soak
        # on a non-cube interconnect runs live trials only.
        args.modes = "live" if topo.name != "cube" else "replay,cached,live"
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    progress = None
    if args.verbose:

        def progress(trial):
            print(
                f"seed={trial.seed:>3} mode={trial.mode:<6} "
                f"{trial.outcome}"
                + (
                    f" ({trial.resolved})"
                    if trial.outcome == "verified"
                    else ""
                ),
                file=sys.stderr,
            )

    try:
        report = run_chaos(
            n=args.n,
            elements=args.elements,
            layout=args.layout,
            algorithm=args.algorithm,
            seeds=args.seeds,
            modes=modes,
            link_rate=args.link_rate,
            transient_rate=args.transient_rate,
            window=args.window,
            corrupt_rate=args.corrupt,
            corrupt_intensity=args.corrupt_intensity,
            policy=policy,
            progress=progress,
            topology=topo,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        emit_json("chaos", report.as_dict())
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _server_config(args):
    """Build a ServerConfig from flags or a JSON spec; None on bad input."""
    from dataclasses import replace

    from repro.service import ServerConfig

    try:
        if args.config:
            with open(args.config) as fh:
                config = ServerConfig.from_dict(json.load(fh))
        else:
            config = ServerConfig(
                workers=args.workers,
                queue_capacity=args.queue_capacity,
                tenant_pending=args.tenant_pending or None,
                tenant_rate=args.tenant_rate,
                max_batch=args.max_batch,
                cache_capacity=args.cache_size,
                cache_dir=args.cache_dir,
                recovery=args.recover,
                retries=args.retries,
                watchdog=_parse_watchdog(args.watchdog),
                poison_threshold=args.poison_threshold,
                breaker=args.breaker,
                brownout=args.brownout,
            )
        # Observability flags compose with either source: asking for a
        # trace file arms tracing, and --metrics-port always wins.
        if getattr(args, "trace", None):
            config = replace(config, trace=True)
        if getattr(args, "metrics_port", None) is not None:
            config = replace(config, metrics_port=args.metrics_port)
        return config
    except (OSError, ValueError, TypeError) as exc:
        print(f"bad server config: {exc}", file=sys.stderr)
        return None


def _write_json(path: str, doc, *, label: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {label} {path}", file=sys.stderr)


def cmd_serve(args) -> int:
    from repro.service import (
        AdmissionRejectedError,
        TransposeRequest,
        TransposeServer,
    )

    config = _server_config(args)
    if config is None:
        return 2
    try:
        with open(args.requests) as fh:
            docs = json.load(fh)
        if not isinstance(docs, list):
            raise ValueError("requests file must hold a JSON array")
        base = {"tenant": "default"}
        if args.topology:
            # Default interconnect for requests that don't name one; a
            # request's own "topology" field still wins.
            base["topology"] = args.topology
        requests = [
            TransposeRequest.from_dict({**base, "request_id": i, **d})
            for i, d in enumerate(docs)
        ]
    except (OSError, ValueError, TypeError) as exc:
        print(f"cannot load requests: {exc}", file=sys.stderr)
        return 2

    with TransposeServer(config) as server:
        pendings = []
        for request in requests:
            try:
                pendings.append(server.submit(request))
            except ValueError as exc:
                print(
                    f"request {request.request_id} invalid: {exc}",
                    file=sys.stderr,
                )
                return 2
            except AdmissionRejectedError as exc:
                if args.verbose:
                    print(f"shed: {exc}", file=sys.stderr)
        for pending in pendings:
            pending.result(timeout=600.0)
    report = server.report()
    if args.trace:
        _write_json(args.trace, server.trace_document(), label="trace")
    if args.flight_out and report.flight_reports:
        _write_json(
            args.flight_out, report.flight_reports, label="flight dump"
        )
    if args.metrics_out:
        from repro.obs.ops import format_prometheus

        with open(args.metrics_out, "w") as fh:
            fh.write(format_prometheus(server.metrics()))
        print(f"wrote metrics {args.metrics_out}", file=sys.stderr)
    failed = report.slo()["failed"]
    if args.json:
        emit_json("serve", report.as_dict(with_outcomes=args.outcomes))
        return 0 if failed == 0 else 1
    slo = report.slo()
    lat = slo["latency_s"]["total"]
    print(
        f"served {slo['served']}/{slo['requests']} request(s) on "
        f"{report.workers} worker(s): {slo['rejected']} shed, "
        f"{slo['deadline_missed']} missed deadline, {failed} failed"
    )
    print(
        f"cache hit rate {slo['cache_hit_rate']:.1%}; latency p50 "
        f"{lat['p50'] * 1e3:.1f} ms, p95 {lat['p95'] * 1e3:.1f} ms, "
        f"p99 {lat['p99'] * 1e3:.1f} ms"
    )
    for tenant, t in report.per_tenant().items():
        print(
            f"  {tenant}: admitted {t['admitted']}, served {t['served']}, "
            f"rejected {t['rejected']}, cache hits {t['cache_hits']}"
        )
    return 0 if failed == 0 else 1


def cmd_loadgen(args) -> int:
    from repro.service import LoadSpec, run_loadgen

    config = _server_config(args)
    if config is None:
        return 2
    try:
        spec = LoadSpec(
            seed=args.seed,
            tenants=args.tenants,
            requests=args.requests,
            mode=args.mode,
            rate=args.rate,
            shapes=args.shapes,
            n=args.n,
            machine=args.machine,
            fault_rate=args.fault_rate,
            deadline=args.deadline,
            verify_sample=args.verify_sample,
            request_timeout=args.request_timeout,
            workload=args.workload,
            workload_every=args.workload_every if args.workload else 0,
        )
    except ValueError as exc:
        print(f"bad loadgen spec: {exc}", file=sys.stderr)
        return 2
    report = run_loadgen(spec, config)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.trace and report.trace is not None:
        _write_json(args.trace, report.trace, label="trace")
    if args.flight_out and report.server.flight_reports:
        _write_json(
            args.flight_out,
            report.server.flight_reports,
            label="flight dump",
        )
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(report.metrics_text)
        print(f"wrote metrics {args.metrics_out}", file=sys.stderr)
    if args.json:
        emit_json("loadgen", report.as_dict())
    else:
        print(report.summary())
        for tenant, t in report.server.per_tenant().items():
            print(
                f"  {tenant}: admitted {t['admitted']}, served "
                f"{t['served']}, rejected {t['rejected']}, cache hits "
                f"{t['cache_hits']}, missed deadlines "
                f"{t['deadline_missed']}"
            )
    return 0 if report.ok else 1


def cmd_top(args) -> int:
    """Drive a seeded soak and repaint a live ops dashboard over it."""
    import threading

    from repro.obs.ops import render_top
    from repro.service import LoadSpec, TransposeServer, build_workload
    from repro.service.loadgen import _drive_closed, _drive_open

    config = _server_config(args)
    if config is None:
        return 2
    try:
        spec = LoadSpec(
            seed=args.seed,
            tenants=args.tenants,
            requests=args.requests,
            mode=args.mode,
            rate=args.rate,
            shapes=args.shapes,
            n=args.n,
            machine=args.machine,
            fault_rate=args.fault_rate,
            deadline=args.deadline,
            verify_sample=0,
        )
    except ValueError as exc:
        print(f"bad soak spec: {exc}", file=sys.stderr)
        return 2

    server = TransposeServer(config)
    requests = build_workload(spec)
    done = threading.Event()

    def drive() -> None:
        try:
            if spec.mode == "closed":
                _drive_closed(server, requests, spec)
            else:
                _drive_open(server, requests, spec)
        finally:
            done.set()

    def frame(*, clear: bool) -> None:
        doc = server.report().as_dict()
        print(render_top(doc, title="repro top", clear=clear), end="",
              flush=True)

    with server:
        if server.exporter is not None:
            print(
                f"metrics on http://127.0.0.1:{server.exporter.port}/metrics",
                file=sys.stderr,
            )
        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        try:
            while not done.wait(args.interval):
                frame(clear=not args.plain)
        except KeyboardInterrupt:
            print("\ninterrupted; draining...", file=sys.stderr)
        driver.join(timeout=1.0)
    frame(clear=not args.plain)
    if args.trace:
        _write_json(args.trace, server.trace_document(), label="trace")
    report = server.report()
    if args.flight_out and report.flight_reports:
        _write_json(
            args.flight_out, report.flight_reports, label="flight dump"
        )
    if args.metrics_out:
        from repro.obs.ops import format_prometheus

        with open(args.metrics_out, "w") as fh:
            fh.write(format_prometheus(server.metrics()))
        print(f"wrote metrics {args.metrics_out}", file=sys.stderr)
    return 0 if report.slo()["failed"] == 0 else 1


def cmd_baseline(args) -> int:
    import os

    from repro.obs.baseline import (
        DEFAULT_SUITE,
        DEFAULT_TOLERANCE,
        check_baselines,
        record_baselines,
        run_scenario,
    )

    rc = 0
    report = None
    if args.action == "record":
        for path in record_baselines(args.dir):
            print(f"wrote {path}")
    else:
        tol = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        report = check_baselines(args.dir, rel_tol=tol)
        print(report.describe())
        rc = 0 if report.ok else 1

    if args.trace_dir or args.bench_out:
        from repro.obs import ChromeTraceSink, Instrumentation

        if args.trace_dir:
            os.makedirs(args.trace_dir, exist_ok=True)
        scenarios = {}
        for scenario in DEFAULT_SUITE:
            sink = ChromeTraceSink()
            counters = run_scenario(scenario, observer=Instrumentation(sink))
            scenarios[scenario.id] = counters
            if args.trace_dir:
                path = os.path.join(
                    args.trace_dir, f"{scenario.id}.trace.json"
                )
                sink.write(path)
                print(f"wrote {path}", file=sys.stderr)
        if args.bench_out:
            doc = {
                "suite": [s.describe() for s in DEFAULT_SUITE],
                "counters": scenarios,
                "check": None if report is None else report.as_dict(),
            }
            with open(args.bench_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.bench_out}", file=sys.stderr)
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matrix transposition on simulated Boolean n-cubes "
        "(Johnsson & Ho 1987 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--machine", choices=["ipsc", "cm", "custom"], default="ipsc")
        p.add_argument("-n", type=int, default=6, help="cube dimension")
        p.add_argument("--tau", type=float, default=1.0, help="custom start-up")
        p.add_argument("--t-c", dest="t_c", type=float, default=1.0)
        p.add_argument("--n-port", action="store_true")
        p.add_argument(
            "--elements", type=int, default=1 << 16, help="matrix elements (power of 2)"
        )

    def json_flag(p):
        p.add_argument(
            "--json", action="store_true", help="machine-readable JSON output"
        )

    def topology_flag(p, *, default=None):
        p.add_argument(
            "--topology",
            default=default,
            metavar="SPEC",
            help="interconnect topology: cube (default), torus:4x4x4, "
            "mesh:8x8, or dragonfly:K,M; a non-cube topology overrides "
            "-n (node count must be a power of two)",
        )

    def problem(p):
        p.add_argument(
            "--layout", choices=["2d", "1d-rows", "1d-cols"], default="2d"
        )
        p.add_argument(
            "--algorithm",
            default="auto",
            help="strategy name (default auto; e.g. spt, dpt, mpt, router)",
        )

    pa = sub.add_parser("advise", help="rank algorithms analytically (§9)")
    common(pa)
    json_flag(pa)
    pa.set_defaults(fn=cmd_advise)

    def workload_flag(p):
        p.add_argument(
            "--workload",
            default=None,
            metavar="SPEC",
            help="composite permutation pipeline instead of a plain "
            "transpose: [pipeline:]stage(+stage)*[@RxC] with stages "
            "transpose, bitrev, gray, binary, dimperm:<perm>, or the "
            "fft preset (e.g. pipeline:bitrev+transpose@13x11, "
            "fft@64x64); --elements supplies a square default shape "
            "and --algorithm is ignored",
        )

    pr = sub.add_parser("run", help="run one simulated transpose")
    common(pr)
    problem(pr)
    topology_flag(pr)
    workload_flag(pr)
    json_flag(pr)
    pr.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="reproducible fault scenario as comma-separated key=value: "
        "seed=S, link_rate=R, transient_rate=R, window=W, "
        "nodes=3+9, links=0-1+6-4 (see FaultPlan.from_spec)",
    )
    pr.add_argument(
        "--heatmap",
        action="store_true",
        help="print the per-link ASCII utilization heatmap after the run",
    )
    pr.add_argument(
        "--timeline",
        action="store_true",
        help="print the per-phase congestion timeline after the run",
    )
    pr.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON (load in Perfetto / "
        "chrome://tracing)",
    )
    pr.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="snapshot node memories every K phases (0 = off); the "
        "run's recovery accounting lands in the --json output",
    )
    pr.set_defaults(fn=cmd_run)

    pm = sub.add_parser("machines", help="show machine presets")
    pm.add_argument("-n", type=int, default=6)
    json_flag(pm)
    pm.set_defaults(fn=cmd_machines)

    pp = sub.add_parser(
        "plan", help="compile a transpose schedule without executing payloads"
    )
    common(pp)
    problem(pp)
    topology_flag(pp)
    workload_flag(pp)
    json_flag(pp)
    pp.add_argument("--out", default=None, metavar="FILE", help="write plan JSON here")
    pp.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="store the plan content-addressed in this directory "
        "(prints the key)",
    )
    pp.set_defaults(fn=cmd_plan)

    py = sub.add_parser("replay", help="execute a compiled plan")
    py.add_argument("plan", help="plan JSON file (from `repro plan --out`)")
    py.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="replay on a faulted network (see FaultPlan.from_spec)",
    )
    py.add_argument(
        "--recover",
        nargs="?",
        const="",
        default=None,
        metavar="SPEC",
        help="resume-based execution: checkpoint, back off transient "
        "faults, surgically rewrite around permanent ones; optional "
        "policy spec, e.g. every=4,surgery=off "
        "(see RecoveryPolicy.from_spec)",
    )
    py.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="checkpoint cadence in phases (with --recover overrides "
        "the policy; alone just attaches snapshotting to the replay)",
    )
    json_flag(py)
    py.set_defaults(fn=cmd_replay)

    pb = sub.add_parser(
        "batch", help="serve many transpose requests through the plan cache"
    )
    pb.add_argument(
        "requests",
        help="JSON file: array of request objects "
        '(e.g. [{"elements": 4096, "n": 4}])',
    )
    pb.add_argument(
        "--cache-dir", default=None, metavar="DIR", help="on-disk plan store"
    )
    pb.add_argument(
        "--cache-size", type=int, default=128, help="in-memory LRU capacity"
    )
    pb.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the request set this many times (later runs hit the cache)",
    )
    pb.add_argument(
        "--recover",
        nargs="?",
        const="",
        default=None,
        metavar="SPEC",
        help="serve faulted requests resume-based instead of through "
        "the restart ladder (optional RecoveryPolicy.from_spec string)",
    )
    json_flag(pb)
    pb.set_defaults(fn=cmd_batch)

    pc = sub.add_parser(
        "chaos",
        help="soak seeded random fault plans through recovery, "
        "verifying every outcome",
    )
    pc.add_argument("-n", type=int, default=4, help="cube dimension")
    pc.add_argument(
        "--elements", type=int, default=256, help="matrix elements (power of 2)"
    )
    pc.add_argument(
        "--layout", choices=["2d", "1d-rows", "1d-cols"], default="2d"
    )
    pc.add_argument("--algorithm", default="auto")
    topology_flag(pc)
    pc.add_argument(
        "--seeds", type=int, default=50, help="fault-plan seeds 0..N-1"
    )
    pc.add_argument(
        "--modes",
        default=None,
        help="comma-separated subset of replay, cached, live "
        "(default: all three on a cube, live on other topologies)",
    )
    pc.add_argument(
        "--link-rate",
        dest="link_rate",
        type=float,
        default=0.03,
        help="permanent per-directed-link failure probability",
    )
    pc.add_argument(
        "--transient-rate",
        dest="transient_rate",
        type=float,
        default=0.10,
        help="transient per-link failure probability",
    )
    pc.add_argument(
        "--window", type=int, default=32, help="transient phase window"
    )
    pc.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        metavar="RATE",
        help="silent-corruption per-directed-link probability "
        "(checksummed delivery detects and retransmits)",
    )
    pc.add_argument(
        "--corrupt-intensity",
        dest="corrupt_intensity",
        type=float,
        default=0.4,
        metavar="RATE",
        help="per-phase strike probability on a corrupting link",
    )
    pc.add_argument(
        "--recover",
        default=None,
        metavar="SPEC",
        help="recovery policy spec (RecoveryPolicy.from_spec)",
    )
    pc.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full JSON recovery report here (CI artifact)",
    )
    pc.add_argument(
        "--verbose",
        action="store_true",
        help="stream one line per finished trial to stderr",
    )
    # -- service-level chaos (repro chaos --service) ------------------------
    pc.add_argument(
        "--service",
        action="store_true",
        help="batter the serving stack instead of the machine: kill/"
        "hang workers and inject crash/slow/poison requests under a "
        "seeded schedule, gated on the exactly-once invariant",
    )
    pc.add_argument(
        "--seed", type=int, default=11, help="service chaos schedule seed"
    )
    pc.add_argument(
        "--requests", type=int, default=48, help="service soak request count"
    )
    pc.add_argument(
        "--tenants", type=int, default=3, help="service soak tenant count"
    )
    pc.add_argument(
        "--workers", type=int, default=4, help="serving worker pool size"
    )
    pc.add_argument(
        "--kill-rate",
        dest="kill_rate",
        type=float,
        default=0.08,
        help="per-execution probability the worker is killed mid-request",
    )
    pc.add_argument(
        "--hang-rate",
        dest="hang_rate",
        type=float,
        default=0.0,
        help="per-execution probability the worker hangs (watchdog bait)",
    )
    pc.add_argument(
        "--hang-seconds",
        dest="hang_seconds",
        type=float,
        default=0.3,
        help="how long a chaos hang wedges the worker",
    )
    pc.add_argument(
        "--poison-rate",
        dest="poison_rate",
        type=float,
        default=0.04,
        help="probability a request is poisonous (kills every worker "
        "that executes it, until quarantined)",
    )
    pc.add_argument(
        "--crash-rate",
        dest="crash_rate",
        type=float,
        default=0.0,
        help="probability a request fails with a plain exception",
    )
    pc.add_argument(
        "--slow-rate",
        dest="slow_rate",
        type=float,
        default=0.0,
        help="probability an execution is slowed (stays under watchdog)",
    )
    pc.add_argument(
        "--verify-sample",
        dest="verify_sample",
        type=int,
        default=6,
        help="served requests re-run solo for bit-identity",
    )
    pc.add_argument(
        "--retries", type=int, default=2,
        help="supervisor re-dispatch attempts (0 disables retries)",
    )
    pc.add_argument(
        "--watchdog", default="0.15", metavar="SECONDS",
        help="hung-worker deadline ('off' disables; default 0.15)",
    )
    pc.add_argument(
        "--poison-threshold", dest="poison_threshold", type=int, default=2,
        help="consecutive kills before poison quarantine",
    )
    pc.add_argument(
        "--no-supervise",
        dest="no_supervise",
        action="store_true",
        help="force the supervisor off even when retries/watchdog are set",
    )
    pc.add_argument(
        "--events-out",
        dest="events_out",
        default=None,
        metavar="FILE",
        help="write the supervisor's JSON event log here (CI artifact)",
    )
    pc.add_argument(
        "--expect-worker-loss",
        dest="expect_worker_loss",
        action="store_true",
        help="pass only if the pool demonstrably lost workers (the "
        "disabled-resilience control arm)",
    )
    json_flag(pc)
    pc.set_defaults(fn=cmd_chaos)

    def server_flags(p):
        p.add_argument(
            "--config",
            default=None,
            metavar="FILE",
            help="server config as JSON (overrides the flags below)",
        )
        p.add_argument(
            "--workers", type=int, default=2, help="worker thread count"
        )
        p.add_argument(
            "--queue-capacity",
            dest="queue_capacity",
            type=int,
            default=64,
            help="admission queue depth before shedding",
        )
        p.add_argument(
            "--tenant-pending",
            dest="tenant_pending",
            type=int,
            default=16,
            help="max queued requests per tenant (0 = unlimited)",
        )
        p.add_argument(
            "--tenant-rate",
            dest="tenant_rate",
            type=float,
            default=None,
            help="per-tenant admission rate limit (requests/second)",
        )
        p.add_argument(
            "--max-batch",
            dest="max_batch",
            type=int,
            default=4,
            help="same-plan requests a worker drains per dequeue",
        )
        p.add_argument(
            "--cache-size", type=int, default=256, help="plan cache capacity"
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR", help="on-disk plan store"
        )
        p.add_argument(
            "--recover",
            default="every=4",
            metavar="SPEC",
            help="recovery policy for faulted requests "
            "(RecoveryPolicy.from_spec; default every=4)",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="arm request-scoped tracing and write the merged "
            "dual-axis Perfetto trace (one track per worker) here",
        )
        p.add_argument(
            "--flight-out",
            dest="flight_out",
            default=None,
            metavar="FILE",
            help="write flight-recorder dumps from requests that ended "
            "badly (deadline miss, failure, fault escalation) here",
        )
        p.add_argument(
            "--metrics-out",
            dest="metrics_out",
            default=None,
            metavar="FILE",
            help="write a Prometheus text snapshot of the merged worker "
            "metrics after the run",
        )
        p.add_argument(
            "--metrics-port",
            dest="metrics_port",
            type=int,
            default=None,
            metavar="PORT",
            help="serve GET /metrics (Prometheus text) on this port "
            "while the server runs (0 = ephemeral)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=2,
            help="supervisor re-dispatch attempts after a worker death "
            "(0 disables retries)",
        )
        p.add_argument(
            "--watchdog",
            default=None,
            metavar="SECONDS",
            help="declare a worker hung after one request runs this "
            "long ('off' disables; default off)",
        )
        p.add_argument(
            "--poison-threshold",
            dest="poison_threshold",
            type=int,
            default=2,
            help="consecutive worker kills before a request is "
            "quarantined as poison",
        )
        p.add_argument(
            "--breaker",
            default=None,
            metavar="SPEC",
            help="circuit-breaker policy, e.g. "
            "'window=16,threshold=0.5,cooldown=1.0,key=plan' "
            "(BreakerPolicy.from_spec; default off)",
        )
        p.add_argument(
            "--brownout",
            default=None,
            metavar="SPEC",
            help="overload brownout ladder, e.g. "
            "'slo=0.25,objective=0.9,up=1.0,down=0.25,hold=3' "
            "(BrownoutPolicy.from_spec; default off)",
        )

    ps = sub.add_parser(
        "serve",
        help="serve a file of tenant transpose requests through the "
        "multi-tenant serving layer",
    )
    ps.add_argument(
        "requests",
        help="JSON file: array of request objects; problem fields plus "
        'optional "tenant", "priority", "deadline" '
        '(e.g. [{"tenant": "a", "elements": 4096, "n": 4}])',
    )
    server_flags(ps)
    ps.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="default interconnect applied to requests that don't name "
        "one (cube, torus:4x4x4, mesh:8x8, dragonfly:K,M)",
    )
    ps.add_argument(
        "--outcomes",
        action="store_true",
        help="include the per-request outcome list in --json output",
    )
    ps.add_argument(
        "--verbose",
        action="store_true",
        help="log shed requests to stderr",
    )
    json_flag(ps)
    ps.set_defaults(fn=cmd_serve)

    pg = sub.add_parser(
        "loadgen",
        help="drive a server with seeded synthetic multi-tenant traffic "
        "and spot-check outcomes bit-identically against solo runs",
    )
    pg.add_argument("--seed", type=int, default=7, help="workload seed")
    pg.add_argument(
        "--tenants", type=int, default=4, help="tenant count (round-robin)"
    )
    pg.add_argument(
        "--requests", type=int, default=200, help="total request count"
    )
    pg.add_argument(
        "--mode",
        choices=["closed", "open"],
        default="closed",
        help="closed: one waiting client per tenant; open: seeded "
        "arrival schedule that never waits (drives shedding)",
    )
    pg.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="open-loop offered load (requests/second)",
    )
    pg.add_argument(
        "--shapes", type=int, default=4, help="distinct problem shapes"
    )
    pg.add_argument("-n", type=int, default=4, help="cube dimension")
    pg.add_argument(
        "--machine", choices=["ipsc", "cm"], default="cm"
    )
    pg.add_argument(
        "--fault-rate",
        dest="fault_rate",
        type=float,
        default=0.0,
        help="probability a request carries a seeded fault spec",
    )
    pg.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="relative deadline in seconds applied to every request",
    )
    pg.add_argument(
        "--verify-sample",
        dest="verify_sample",
        type=int,
        default=8,
        help="served fault-free requests re-run solo for bit-identity",
    )
    pg.add_argument(
        "--request-timeout",
        dest="request_timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="closed-loop client patience per request; expiries are "
        "counted separately in the report (default 120)",
    )
    pg.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="mix composite-pipeline requests into the stream "
        "(repro.workloads grammar, e.g. fft@64x64)",
    )
    pg.add_argument(
        "--workload-every",
        dest="workload_every",
        type=int,
        default=4,
        metavar="K",
        help="every k-th request becomes a --workload pipeline "
        "request (default 4; only meaningful with --workload)",
    )
    pg.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full JSON load report here (CI artifact)",
    )
    server_flags(pg)
    json_flag(pg)
    pg.set_defaults(fn=cmd_loadgen)

    pt = sub.add_parser(
        "top",
        help="drive a seeded soak and repaint a live ASCII ops "
        "dashboard (throughput, queue depth, SLO burn, per-tenant "
        "table) while it runs",
    )
    pt.add_argument("--seed", type=int, default=7, help="workload seed")
    pt.add_argument(
        "--tenants", type=int, default=4, help="tenant count (round-robin)"
    )
    pt.add_argument(
        "--requests", type=int, default=400, help="total request count"
    )
    pt.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="drive mode (see loadgen)",
    )
    pt.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop offered load (requests/second)",
    )
    pt.add_argument(
        "--shapes", type=int, default=4, help="distinct problem shapes"
    )
    pt.add_argument("-n", type=int, default=4, help="cube dimension")
    pt.add_argument("--machine", choices=["ipsc", "cm"], default="cm")
    pt.add_argument(
        "--fault-rate", dest="fault_rate", type=float, default=0.0,
        help="probability a request carries a seeded fault spec",
    )
    pt.add_argument(
        "--deadline", type=float, default=None,
        help="relative deadline in seconds applied to every request",
    )
    pt.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between dashboard repaints",
    )
    pt.add_argument(
        "--plain", action="store_true",
        help="append frames instead of repainting (no ANSI clear; "
        "for logs and dumb terminals)",
    )
    server_flags(pt)
    pt.set_defaults(fn=cmd_top)

    pl = sub.add_parser(
        "baseline",
        help="record or check the pinned perf-regression suite",
    )
    pl.add_argument(
        "action",
        choices=["record", "check"],
        help="record: snapshot counters; check: diff against snapshots",
    )
    pl.add_argument(
        "--dir",
        default="benchmarks/baselines",
        help="baseline snapshot directory (default benchmarks/baselines)",
    )
    pl.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative tolerance for check (default: exact up to float "
        "accumulation slack)",
    )
    pl.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="also export one Chrome trace JSON per scenario here",
    )
    pl.add_argument(
        "--bench-out",
        default=None,
        metavar="FILE",
        help="write a machine-readable suite summary (e.g. BENCH_obs.json)",
    )
    pl.set_defaults(fn=cmd_baseline)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
