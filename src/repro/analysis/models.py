"""The paper's timing formulas, verbatim.

All take the total matrix size ``M = P * Q`` in elements and a
:class:`~repro.machine.params.MachineParams` carrying ``n``, ``tau``,
``t_c``, ``B_m`` and ``t_copy``.  Functions are named after the section
they come from; docstrings quote the formula.
"""

from __future__ import annotations

import math

from repro.machine.params import MachineParams

__all__ = [
    "one_to_all_sbt_time",
    "one_to_all_sbt_min_time",
    "one_to_all_nport_min_time",
    "one_to_all_sbnt_time",
    "one_to_all_sbnt_min_packet",
    "all_to_all_exchange_time",
    "all_to_all_min_time",
    "all_to_all_nport_min_time",
    "some_to_all_time",
    "spt_time",
    "spt_optimal_packet",
    "spt_min_time",
    "dpt_time",
    "dpt_min_time",
    "mpt_time",
    "mpt_min_time",
    "mpt_optimal_packet",
    "ipsc_one_dim_unbuffered_time",
    "ipsc_one_dim_buffered_time",
    "ipsc_two_dim_time",
]


def _ceil(a: float, b: float) -> int:
    return int(math.ceil(a / b))


# -- §3.1 one-to-all -----------------------------------------------------------


def one_to_all_sbt_time(params: MachineParams, M: int) -> float:
    """One-port SBT scatter: ``(1 - 1/N) M t_c + sum_i ceil(M / (2^i B_m)) tau``."""
    N = params.num_procs
    startups = sum(
        _ceil(M, (1 << i) * params.packet_capacity) for i in range(1, params.n + 1)
    )
    return (1 - 1 / N) * M * params.t_c + startups * params.tau


def one_to_all_sbt_min_time(params: MachineParams, M: int) -> float:
    """Minimum over packet size: ``(1 - 1/N) M t_c + n tau``."""
    N = params.num_procs
    return (1 - 1 / N) * M * params.t_c + params.n * params.tau


def one_to_all_nport_min_time(params: MachineParams, M: int) -> float:
    """n-port SBnT / rotated-SBT scatter: ``(1/n)(1 - 1/N) M t_c + n tau``."""
    N = params.num_procs
    n = max(params.n, 1)
    return (1 / n) * (1 - 1 / N) * M * params.t_c + params.n * params.tau


def one_to_all_sbnt_time(params: MachineParams, M: int) -> float:
    """n-port SBnT scatter with finite packets (§3.1):

    ``T = (1/n)(1 - 1/N) M t_c + sum_i ceil( C(n, i) M / (n B_m N) ) tau``

    — the level-``i`` tier of each subtree holds ``~C(n, i)/n`` of the
    nodes, and its data crosses the root port as ``ceil(.)`` packets.
    The minimum over ``B_m`` is :func:`one_to_all_nport_min_time`,
    attained once ``B_m >= max_i C(n, i) M / (n N) ~ sqrt(2/pi) M / n^{3/2}``.
    """
    N = params.num_procs
    n = max(params.n, 1)
    startups = sum(
        _ceil(math.comb(params.n, i) * M, n * params.packet_capacity * N)
        for i in range(1, params.n + 1)
    )
    return (1 / n) * (1 - 1 / N) * M * params.t_c + startups * params.tau


def one_to_all_sbnt_min_packet(params: MachineParams, M: int) -> float:
    """The §3.1 packet size achieving the SBnT minimum:
    ``max_i C(n,i) M / (n N) ~ sqrt(2/pi) M / n^{3/2}``."""
    n = max(params.n, 1)
    N = params.num_procs
    return max(
        math.comb(params.n, i) * M / (n * N) for i in range(1, params.n + 1)
    )


# -- §3.2 all-to-all -----------------------------------------------------------


def all_to_all_exchange_time(params: MachineParams, M: int) -> float:
    """One-port exchange: ``n M/(2N) t_c + n ceil(M / (2 N B_m)) tau``."""
    N = params.num_procs
    n = params.n
    per_step = M / (2 * N)
    return n * per_step * params.t_c + n * _ceil(M, 2 * N * params.packet_capacity) * params.tau


def all_to_all_min_time(params: MachineParams, M: int) -> float:
    """Minimum for ``B_m >= M/(2N)``: ``n (M/(2N) t_c + tau)``."""
    N = params.num_procs
    return params.n * (M / (2 * N) * params.t_c + params.tau)


def all_to_all_nport_min_time(params: MachineParams, M: int) -> float:
    """n-port SBnT routing: ``M/(2N) t_c + n tau``."""
    N = params.num_procs
    return M / (2 * N) * params.t_c + params.n * params.tau


# -- §3.3 some-to-all (Table 3) --------------------------------------------------


def some_to_all_time(
    params: MachineParams, M: int, k: int, l: int, *, n_port: bool = False
) -> float:
    """Table 3: ``k`` splitting steps + ``l`` all-to-all steps.

    One-port:
    ``T = (l M/2^{k+l+1} + sum_i M/2^{k+l-i}) t_c
        + (l ceil(M/(B_m 2^{k+l+1})) + sum_i ceil(M/(B_m 2^{k+l-i}))) tau``
    with ``i = 0 .. k-1``.  n-port divides the splitting transfer by ``k``
    and the packet counts by the port multiplicity.
    """
    if k < 0 or l < 0 or k + l > params.n:
        raise ValueError(f"need k, l >= 0 and k + l <= n; got k={k}, l={l}")
    B = params.packet_capacity
    tau, t_c = params.tau, params.t_c
    a2a_volume = M / (1 << (k + l + 1))
    split_volumes = [M / (1 << (k + l - i)) for i in range(k)]
    if not n_port:
        transfer = (l * a2a_volume + sum(split_volumes)) * t_c
        startups = (
            l * _ceil(M, B << (k + l + 1))
            + sum(_ceil(M, B << (k + l - i)) for i in range(k))
        ) * tau
        return transfer + startups
    k_eff = max(k, 1)
    l_eff = max(l, 1)
    transfer = (a2a_volume + sum(split_volumes) / k_eff) * t_c
    startups = (
        l * _ceil(M, l_eff * B << (k + l + 1))
        + sum(_ceil(M, k_eff * B << (k + l - i)) for i in range(k))
    ) * tau
    return transfer + startups


# -- §6.1.1 SPT ------------------------------------------------------------------


def spt_time(params: MachineParams, M: int, B: int) -> float:
    """Pipelined SPT: ``(ceil(M/(B N)) + n - 1)(B t_c + tau)``."""
    if B < 1:
        raise ValueError("packet size must be at least 1")
    N = params.num_procs
    return (_ceil(M, B * N) + params.n - 1) * (B * params.t_c + params.tau)


def spt_optimal_packet(params: MachineParams, M: int) -> float:
    """``B_opt = sqrt(M tau / (N (n-1) t_c))``."""
    N = params.num_procs
    if params.n <= 1 or params.t_c == 0:
        return float(M) / N
    return math.sqrt(M * params.tau / (N * (params.n - 1) * params.t_c))


def spt_min_time(params: MachineParams, M: int) -> float:
    """``T_min = (sqrt(M/N t_c) + sqrt((n-1) tau))^2``."""
    N = params.num_procs
    return (
        math.sqrt(M / N * params.t_c) + math.sqrt((params.n - 1) * params.tau)
    ) ** 2


# -- §6.1.2 DPT ------------------------------------------------------------------


def dpt_time(params: MachineParams, M: int, B: int) -> float:
    """``(ceil(M/(2 B N)) + n - 1)(B t_c + tau)``."""
    if B < 1:
        raise ValueError("packet size must be at least 1")
    N = params.num_procs
    return (_ceil(M, 2 * B * N) + params.n - 1) * (B * params.t_c + params.tau)


def dpt_min_time(params: MachineParams, M: int) -> float:
    """``T_min = (sqrt(M/(2N) t_c) + sqrt((n-1) tau))^2``."""
    N = params.num_procs
    return (
        math.sqrt(M / (2 * N) * params.t_c)
        + math.sqrt((params.n - 1) * params.tau)
    ) ** 2


# -- §6.1.3 MPT (Theorem 2) --------------------------------------------------------


def mpt_time(params: MachineParams, M: int, k: int, H: int | None = None) -> float:
    """``T = (2kH + 1)(tau + M t_c / (4 k H N))`` for the H-class.

    Defaults to the anti-diagonal class ``H = n/2`` that bounds the
    completion time.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    H = params.n // 2 if H is None else H
    if H < 1:
        raise ValueError("H must be at least 1")
    N = params.num_procs
    return (2 * k * H + 1) * (params.tau + M * params.t_c / (4 * k * H * N))


def mpt_min_time(params: MachineParams, M: int) -> float:
    """Theorem 2's piecewise ``T_min`` (n even).

    * start-up bound (``n >= sqrt(M t_c / (N tau))``):
      ``(n+1) tau + (n+1)/(2n) * M/N * t_c``;
    * intermediate band: ``(n/2 + 3) tau + (n+6)/(2n+8) M/N t_c`` for
      ``n/2`` even, ``(n/2 + 2) tau + (n+4)/(2n+4) M/N t_c`` for odd;
    * transfer bound (``n <= sqrt(M t_c / (2 N tau))``):
      ``(sqrt(tau) + sqrt(M t_c / (2N)))^2``.
    """
    n = params.n
    if n % 2 or n == 0:
        raise ValueError("MPT assumes an even, non-zero cube dimension")
    N = params.num_procs
    tau, t_c = params.tau, params.t_c
    L = M / N
    if tau == 0:
        hi = lo = float("inf")
    else:
        hi = math.sqrt(M * t_c / (N * tau))
        lo = math.sqrt(M * t_c / (2 * N * tau))
    if n >= hi:
        return (n + 1) * tau + (n + 1) / (2 * n) * L * t_c
    if n > lo:
        if (n // 2) % 2 == 0:
            return (n / 2 + 3) * tau + (n + 6) / (2 * n + 8) * L * t_c
        return (n / 2 + 2) * tau + (n + 4) / (2 * n + 4) * L * t_c
    return (math.sqrt(tau) + math.sqrt(L * t_c / 2)) ** 2


def mpt_optimal_packet(params: MachineParams, M: int) -> float:
    """Theorem 2's ``B_opt`` (n even)."""
    n = params.n
    if n % 2 or n == 0:
        raise ValueError("MPT assumes an even, non-zero cube dimension")
    N = params.num_procs
    tau, t_c = params.tau, params.t_c
    L = M / N
    threshold = math.sqrt(M * t_c / (2 * N * tau)) if tau else float("inf")
    if n > threshold:
        if (n // 2) % 2 == 0:
            return math.ceil(L / (n + 4))
        return math.ceil(L / (n + 2))
    if t_c == 0:
        return L / 2
    return math.sqrt(M * tau / (2 * N * t_c))


# -- §8.1 / §8.2 iPSC estimates ------------------------------------------------------


def ipsc_one_dim_unbuffered_time(params: MachineParams, M: int) -> float:
    """§8.1 unbuffered: grows linearly in N through the start-up count.

    ``T = n M/(2N) t_c
        + (N + ceil(M/(2 B_m N)) min(n, log2 ceil(M/(B_m N))) - M/(B_m N)) tau``
    """
    N = params.num_procs
    n = params.n
    B = params.packet_capacity
    blocks = _ceil(M, B * N)
    log_term = math.log2(blocks) if blocks > 1 else 0.0
    startups = N + _ceil(M, 2 * B * N) * min(n, log_term) - M / (B * N)
    return n * M / (2 * N) * params.t_c + max(startups, 0.0) * params.tau


def ipsc_one_dim_buffered_time(
    params: MachineParams, M: int, *, B_copy: int | None = None
) -> float:
    """§8.1 optimum buffering: start-ups grow with n, plus copy cost.

    ``T = n M/(2N) t_c + M/N max(0, n - log ceil(M/(B_copy N))) t_copy
        + (min(N, M/(B_copy N)) - min(N, M/(B_m N))
           + ceil(M/(2 B_m N)) (min(n, log ceil(M/(B_m N)))
              + max(0, n - log ceil(M/(B_copy N))))) tau``
    """
    N = params.num_procs
    n = params.n
    B_m = params.packet_capacity
    if B_copy is None:
        # Buffering copies each element twice (gather + scatter), so the
        # break-even run length is tau / (2 t_copy).
        B_copy = (
            max(1, round(params.tau / (2 * params.t_copy)))
            if params.t_copy
            else B_m
        )
    blocks_m = _ceil(M, B_m * N)
    blocks_c = _ceil(M, B_copy * N)
    log_m = math.log2(blocks_m) if blocks_m > 1 else 0.0
    log_c = math.log2(blocks_c) if blocks_c > 1 else 0.0
    buffered_steps = max(0.0, n - log_c)
    transfer = n * M / (2 * N) * params.t_c
    copy = M / N * buffered_steps * params.t_copy
    startups = (
        min(N, M / (B_copy * N))
        - min(N, M / (B_m * N))
        + _ceil(M, 2 * B_m * N) * (min(n, log_m) + buffered_steps)
    )
    return transfer + copy + max(startups, 0.0) * params.tau


def ipsc_two_dim_time(params: MachineParams, M: int) -> float:
    """§8.2 step-by-step SPT on the iPSC:
    ``T = (M/N t_c + ceil(M/(B_m N)) tau) n + 2 M/N t_copy``."""
    N = params.num_procs
    per_hop = M / N * params.t_c + _ceil(M, params.packet_capacity * N) * params.tau
    return per_hop * params.n + 2 * M / N * params.t_copy
