"""Algorithm advisor: the paper's §9 decision procedure, as a report.

Given a machine and a problem size, evaluate every applicable closed-form
model and rank the algorithms — the practical output of the paper's
analysis ("which partitioning and which algorithm should I use on my
cube?").  Used by ``examples/algorithm_advisor.py`` and handy in tests
for checking regime boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import models as md
from repro.analysis.bounds import transpose_lower_bound
from repro.machine.params import MachineParams, PortModel

__all__ = [
    "AlgorithmEstimate",
    "estimate_transpose_options",
    "format_congestion_timeline",
    "format_link_heatmap",
    "format_report",
    "format_topology_heatmap",
    "report_data",
]


@dataclass(frozen=True)
class AlgorithmEstimate:
    """One algorithm's analytic prediction for a problem instance."""

    name: str
    partitioning: str
    time: float
    note: str = ""


def estimate_transpose_options(
    params: MachineParams, M: int
) -> list[AlgorithmEstimate]:
    """Every applicable closed form for transposing ``M`` elements,
    sorted fastest first."""
    n = params.n
    out: list[AlgorithmEstimate] = []
    n_port = params.port_model is PortModel.N_PORT

    if n_port:
        out.append(
            AlgorithmEstimate(
                "all-to-all (SBnT)",
                "1D",
                md.all_to_all_nport_min_time(params, M),
                "M/(2N) t_c + n tau (§3.2)",
            )
        )
        if n and n % 2 == 0:
            out.append(
                AlgorithmEstimate(
                    "MPT",
                    "2D",
                    md.mpt_min_time(params, M),
                    "Theorem 2 piecewise minimum",
                )
            )
            out.append(
                AlgorithmEstimate(
                    "DPT",
                    "2D",
                    md.dpt_min_time(params, M),
                    "two paths, optimal packets (§6.1.2)",
                )
            )
            out.append(
                AlgorithmEstimate(
                    "SPT (pipelined)",
                    "2D",
                    md.spt_min_time(params, M),
                    "one path, optimal packets (§6.1.1)",
                )
            )
    else:
        out.append(
            AlgorithmEstimate(
                "exchange (buffered)",
                "1D",
                md.ipsc_one_dim_buffered_time(params, M),
                "optimum buffering (§8.1)",
            )
        )
        out.append(
            AlgorithmEstimate(
                "exchange (unbuffered)",
                "1D",
                md.ipsc_one_dim_unbuffered_time(params, M),
                "start-ups ~ N (§8.1)",
            )
        )
        if n and n % 2 == 0:
            out.append(
                AlgorithmEstimate(
                    "SPT (step-by-step)",
                    "2D",
                    md.ipsc_two_dim_time(params, M),
                    "whole-block hops + 2L t_copy (§8.2)",
                )
            )
    out.sort(key=lambda e: e.time)
    return out


def _regime(params: MachineParams, M: int) -> tuple[float, str] | None:
    """The §9 regime classification: ``(sqrt(M t_c/(N tau)), label)``."""
    if params.tau <= 0:
        return None
    import math

    hi = math.sqrt(M * params.t_c / (params.num_procs * params.tau))
    if params.n >= hi:
        label = "start-up bound: 1D wins by about one start-up (§9)"
    elif params.n <= hi / math.sqrt(2):
        label = "transfer bound: 1D wins (§9)"
    else:
        label = "intermediate band: near the §9 break-even"
    return hi, label


def report_data(params: MachineParams, M: int) -> dict:
    """The advisor's ranking as a machine-readable document.

    The same computation :func:`format_report` renders for humans,
    shaped for ``python -m repro advise --json`` and other programmatic
    consumers (the batch runner, services).
    """
    options = estimate_transpose_options(params, M)
    regime = _regime(params, M)
    return {
        "elements": M,
        "machine": {
            "name": params.name,
            "n": params.n,
            "num_procs": params.num_procs,
            "port_model": params.port_model.value,
            "tau": params.tau,
            "t_c": params.t_c,
        },
        "lower_bound": transpose_lower_bound(params, M),
        "ranking": [
            {
                "rank": rank,
                "algorithm": est.name,
                "partitioning": est.partitioning,
                "time": est.time,
                "note": est.note,
            }
            for rank, est in enumerate(options, 1)
        ],
        "regime": None
        if regime is None
        else {"break_even": regime[0], "note": regime[1]},
    }


# -- observability renderers -------------------------------------------------
#
# ASCII views over the measured (not modelled) side of a run: the
# per-link loads a TransferStats accumulated and the per-phase timeline
# a TraceRecorder captured.  Both are pure string formatters so they can
# be unit-tested without a terminal and embedded in CLI/report output.

_SHADES = " .:-=+*#%@"


def _shade(load: int, peak: int) -> str:
    """Map a load onto the ASCII intensity ramp (peak maps to '@')."""
    if load <= 0 or peak <= 0:
        return _SHADES[0]
    idx = 1 + (load * (len(_SHADES) - 2)) // peak
    return _SHADES[min(idx, len(_SHADES) - 1)]


def format_link_heatmap(
    stats, n: int | None = None, *, max_nodes: int = 64
) -> str:
    """Per-link utilization heatmap: nodes x dimensions, ASCII shaded.

    ``stats`` is anything with a ``link_elements`` mapping of directed
    ``(src, dst)`` pairs to element counts (a
    :class:`~repro.machine.metrics.TransferStats`).  Row ``v``, column
    ``d`` shades the load of the directed cube edge ``v -> v ^ 2^d``;
    the ramp ``' .:-=+*#%@'`` is scaled so the busiest link renders
    ``@``.  A schedule that balances load (the paper's edge-disjoint
    exchanges) shows as a uniform field; router contention shows as hot
    columns.
    """
    links: dict[tuple[int, int], int] = dict(stats.link_elements)
    if not links:
        return "link heatmap: no link traffic recorded"
    if n is None:
        n = max(max(s, d) for s, d in links).bit_length()
    num = 1 << n
    peak = max(links.values())
    hot = max(links, key=links.get)

    header = "node  " + " ".join(f"d{d}" for d in range(n))
    lines = [
        f"Per-link element load ({num} nodes x {n} dims, "
        f"directed v -> v^2^d)",
        header,
    ]
    for v in range(min(num, max_nodes)):
        cells = " ".join(
            f" {_shade(links.get((v, v ^ (1 << d)), 0), peak)}"
            for d in range(n)
        )
        lines.append(f"{v:>4}  {cells}")
    if num > max_nodes:
        lines.append(f"... {num - max_nodes} more node(s)")
    per_dim = [0] * n
    for (s, d), load in links.items():
        if s != d:
            per_dim[(s ^ d).bit_length() - 1] += load
    lines.append(
        "dim totals: "
        + "  ".join(f"d{d}={per_dim[d]}" for d in range(n))
    )
    lines.append(
        f"peak link: {hot[0]}->{hot[1]} carrying {peak} element(s); "
        f"scale '{_SHADES.strip() or _SHADES}' = 1..{peak}"
    )
    return "\n".join(lines)


def format_topology_heatmap(
    stats, topology, *, max_nodes: int = 64
) -> str:
    """Per-link utilization heatmap for an arbitrary topology.

    The cube heatmap's nodes-x-dimensions grid relies on XOR edge
    structure; this variant renders one row per node with one shaded
    cell per *port* (the node's neighbours in the topology's canonical
    order), so it works for any :class:`~repro.topology.base.Topology`
    — tori, meshes, swapped dragonflies.  The ramp is the same: the
    busiest directed link renders ``@``.
    """
    links: dict[tuple[int, int], int] = dict(stats.link_elements)
    if not links:
        return "link heatmap: no link traffic recorded"
    peak = max(links.values())
    hot = max(links, key=links.get)
    max_degree = max(
        len(topology.neighbors(v)) for v in range(topology.num_nodes)
    )

    lines = [
        f"Per-link element load on {topology.spec} "
        f"({topology.num_nodes} nodes, ports in canonical "
        f"neighbour order)",
        "node  " + " ".join(f"p{p}" for p in range(max_degree)),
    ]
    for v in range(min(topology.num_nodes, max_nodes)):
        neigh = topology.neighbors(v)
        cells = " ".join(
            f" {_shade(links.get((v, w), 0), peak)}" for w in neigh
        )
        lines.append(f"{v:>4}  {cells}")
    if topology.num_nodes > max_nodes:
        lines.append(f"... {topology.num_nodes - max_nodes} more node(s)")
    lines.append(
        f"peak link: {hot[0]}->{hot[1]} carrying {peak} element(s); "
        f"scale '{_SHADES.strip() or _SHADES}' = 1..{peak}"
    )
    return "\n".join(lines)


def format_congestion_timeline(
    events, *, width: int = 40, max_phases: int = 48
) -> str:
    """Per-phase congestion bars from :class:`PhaseEvent` records.

    Each communication or local phase gets a bar proportional to the
    elements it moved (scaled to the busiest phase = ``width`` chars);
    fault and cache events appear as markers so the cause of a stall is
    visible in line with the traffic that surrounds it.
    """
    events = list(events)
    if not events:
        return "congestion timeline: no events recorded"
    peak = max(e.total_elements for e in events)
    lines = [
        f"{'phase':>5}  {'kind':5}  {'elements':>9}  "
        f"{'duration':>10}  congestion"
    ]
    for e in events[:max_phases]:
        if e.kind in ("fault", "cache"):
            lines.append(
                f"{e.index:>5}  {e.kind:5}  {'-':>9}  {'-':>10}  "
                f"! {e.detail}"
            )
            continue
        filled = (
            0
            if peak == 0
            else max(
                1 if e.total_elements else 0,
                (e.total_elements * width) // peak,
            )
        )
        lines.append(
            f"{e.index:>5}  {e.kind:5}  {e.total_elements:>9}  "
            f"{e.duration:>10.4g}  {'#' * filled}"
        )
    if len(events) > max_phases:
        lines.append(f"... {len(events) - max_phases} more")
    busiest = max(events, key=lambda e: e.total_elements)
    lines.append(
        f"peak: phase {busiest.index} moved {busiest.total_elements} "
        f"element(s) in {busiest.duration:.4g} s"
    )
    return "\n".join(lines)


def format_report(params: MachineParams, M: int) -> str:
    """Human-readable ranking plus the lower bound and §9 regime note."""
    options = estimate_transpose_options(params, M)
    bound = transpose_lower_bound(params, M)
    lines = [
        f"Transpose of {M} elements on {params.name} "
        f"({params.num_procs} nodes, {params.port_model.value})",
        f"Theorem 3 lower bound: {bound * 1e3:.3f} ms",
        "",
        f"{'rank':>4}  {'algorithm':24}  {'part.':>5}  {'time (ms)':>12}  note",
    ]
    for rank, est in enumerate(options, 1):
        lines.append(
            f"{rank:>4}  {est.name:24}  {est.partitioning:>5}  "
            f"{est.time * 1e3:12.3f}  {est.note}"
        )
    regime = _regime(params, M)
    if regime is not None:
        hi, label = regime
        lines.append("")
        lines.append(
            f"regime: n = {params.n}, sqrt(M t_c/(N tau)) = {hi:.2f} -> {label}"
        )
    return "\n".join(lines)
