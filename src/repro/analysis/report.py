"""Algorithm advisor: the paper's §9 decision procedure, as a report.

Given a machine and a problem size, evaluate every applicable closed-form
model and rank the algorithms — the practical output of the paper's
analysis ("which partitioning and which algorithm should I use on my
cube?").  Used by ``examples/algorithm_advisor.py`` and handy in tests
for checking regime boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import models as md
from repro.analysis.bounds import transpose_lower_bound
from repro.machine.params import MachineParams, PortModel

__all__ = ["AlgorithmEstimate", "estimate_transpose_options", "format_report"]


@dataclass(frozen=True)
class AlgorithmEstimate:
    """One algorithm's analytic prediction for a problem instance."""

    name: str
    partitioning: str
    time: float
    note: str = ""


def estimate_transpose_options(
    params: MachineParams, M: int
) -> list[AlgorithmEstimate]:
    """Every applicable closed form for transposing ``M`` elements,
    sorted fastest first."""
    n = params.n
    out: list[AlgorithmEstimate] = []
    n_port = params.port_model is PortModel.N_PORT

    if n_port:
        out.append(
            AlgorithmEstimate(
                "all-to-all (SBnT)",
                "1D",
                md.all_to_all_nport_min_time(params, M),
                "M/(2N) t_c + n tau (§3.2)",
            )
        )
        if n and n % 2 == 0:
            out.append(
                AlgorithmEstimate(
                    "MPT",
                    "2D",
                    md.mpt_min_time(params, M),
                    "Theorem 2 piecewise minimum",
                )
            )
            out.append(
                AlgorithmEstimate(
                    "DPT",
                    "2D",
                    md.dpt_min_time(params, M),
                    "two paths, optimal packets (§6.1.2)",
                )
            )
            out.append(
                AlgorithmEstimate(
                    "SPT (pipelined)",
                    "2D",
                    md.spt_min_time(params, M),
                    "one path, optimal packets (§6.1.1)",
                )
            )
    else:
        out.append(
            AlgorithmEstimate(
                "exchange (buffered)",
                "1D",
                md.ipsc_one_dim_buffered_time(params, M),
                "optimum buffering (§8.1)",
            )
        )
        out.append(
            AlgorithmEstimate(
                "exchange (unbuffered)",
                "1D",
                md.ipsc_one_dim_unbuffered_time(params, M),
                "start-ups ~ N (§8.1)",
            )
        )
        if n and n % 2 == 0:
            out.append(
                AlgorithmEstimate(
                    "SPT (step-by-step)",
                    "2D",
                    md.ipsc_two_dim_time(params, M),
                    "whole-block hops + 2L t_copy (§8.2)",
                )
            )
    out.sort(key=lambda e: e.time)
    return out


def format_report(params: MachineParams, M: int) -> str:
    """Human-readable ranking plus the lower bound and §9 regime note."""
    options = estimate_transpose_options(params, M)
    bound = transpose_lower_bound(params, M)
    lines = [
        f"Transpose of {M} elements on {params.name} "
        f"({params.num_procs} nodes, {params.port_model.value})",
        f"Theorem 3 lower bound: {bound * 1e3:.3f} ms",
        "",
        f"{'rank':>4}  {'algorithm':24}  {'part.':>5}  {'time (ms)':>12}  note",
    ]
    for rank, est in enumerate(options, 1):
        lines.append(
            f"{rank:>4}  {est.name:24}  {est.partitioning:>5}  "
            f"{est.time * 1e3:12.3f}  {est.note}"
        )
    if params.tau > 0:
        import math

        hi = math.sqrt(M * params.t_c / (params.num_procs * params.tau))
        lines.append("")
        if params.n >= hi:
            regime = "start-up bound: 1D wins by about one start-up (§9)"
        elif params.n <= hi / math.sqrt(2):
            regime = "transfer bound: 1D wins (§9)"
        else:
            regime = "intermediate band: near the §9 break-even"
        lines.append(f"regime: n = {params.n}, sqrt(M t_c/(N tau)) = {hi:.2f} -> {regime}")
    return "\n".join(lines)
