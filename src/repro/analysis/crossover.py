"""One- versus two-dimensional partitioning (§9).

With n-port communication the paper compares

* ``T_1d = M/(2N) t_c + n tau``  (SBnT all-to-all), and
* ``T_2d = mpt_min_time``        (Theorem 2's piecewise form),

concluding: the one-dimensional partitioning wins for
``n >= sqrt(M t_c / (N tau))`` (by about one start-up) and for
``n <= sqrt(M t_c / (2 N tau))``; in the band between, the break-even
falls at ``N ~ c r / log^2 r`` with ``r = M t_c / tau`` and
``1/2 < c < 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.models import mpt_min_time
from repro.machine.params import MachineParams

__all__ = [
    "one_dim_nport_min_time",
    "compare_one_vs_two_dim",
    "break_even_processors",
    "Comparison",
]


def one_dim_nport_min_time(params: MachineParams, M: int) -> float:
    """``T_1d = M/(2N) t_c + n tau`` (§9)."""
    N = params.num_procs
    return M / (2 * N) * params.t_c + params.n * params.tau


@dataclass(frozen=True)
class Comparison:
    """Analytic §9 comparison at one (machine, matrix) point."""

    n: int
    M: int
    t_one_dim: float
    t_two_dim: float

    @property
    def winner(self) -> str:
        if math.isclose(self.t_one_dim, self.t_two_dim, rel_tol=1e-12):
            return "tie"
        return "1d" if self.t_one_dim < self.t_two_dim else "2d"


def compare_one_vs_two_dim(params: MachineParams, M: int) -> Comparison:
    """Evaluate both §9 n-port formulas at this point."""
    return Comparison(
        n=params.n,
        M=M,
        t_one_dim=one_dim_nport_min_time(params, M),
        t_two_dim=mpt_min_time(params, M),
    )


def break_even_processors(M: int, t_c: float, tau: float, c: float = 0.75) -> float:
    """§9's intermediate-band break-even estimate ``N ~ c r / log^2 r``.

    ``r = M t_c / tau``; the paper brackets ``1/2 < c < 1``.
    """
    if not 0 < c:
        raise ValueError("c must be positive")
    if tau <= 0 or t_c <= 0 or M <= 0:
        raise ValueError("M, t_c and tau must be positive")
    r = M * t_c / tau
    if r <= 2:
        return 1.0
    return c * r / math.log2(r) ** 2
