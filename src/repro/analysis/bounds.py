"""Lower bounds (§3 and Theorem 3)."""

from __future__ import annotations

from repro.machine.params import MachineParams

__all__ = [
    "one_to_all_lower_bound",
    "all_to_all_lower_bound",
    "transpose_lower_bound",
]


def one_to_all_lower_bound(
    params: MachineParams, M: int, *, n_port: bool = False
) -> float:
    """§3.1: ``max((1 - 1/N) M t_c, n tau)`` (transfer divided by n for
    n-port)."""
    N = params.num_procs
    transfer = (1 - 1 / N) * M * params.t_c
    if n_port and params.n:
        transfer /= params.n
    return max(transfer, params.n * params.tau)


def all_to_all_lower_bound(params: MachineParams, M: int) -> float:
    """§3.2: ``max(M/(2N) t_c, n tau)``.

    The transfer bound follows from bisection: half the data must cross
    the ``N/2`` links of any dimension cut.
    """
    N = params.num_procs
    return max(M / (2 * N) * params.t_c, params.n * params.tau)


def transpose_lower_bound(params: MachineParams, M: int) -> float:
    """Theorem 3: the two-dimensional transpose needs at least
    ``max(n tau, M/(2N) t_c)``.

    Start-ups: anti-diagonal nodes are at distance ``n``.  Transfer: the
    upper-right quarter's ``N/4`` nodes must export ``M/N`` elements each
    over their ``2 N/4`` outgoing links.
    """
    N = params.num_procs
    return max(params.n * params.tau, M / (2 * N) * params.t_c)
