"""Closed-form performance models from the paper.

Every timing formula the paper states — §3's personalized-communication
complexities, §6.1's SPT/DPT/MPT times (Theorem 2), §8's iPSC estimates
and Theorem 3's lower bound — implemented over a
:class:`~repro.machine.params.MachineParams`, so that benches can
compare the simulator's measured times against the paper's analysis and
reproduce the §9 one- versus two-dimensional comparison.
"""

from repro.analysis.models import (
    all_to_all_exchange_time,
    all_to_all_min_time,
    all_to_all_nport_min_time,
    dpt_min_time,
    dpt_time,
    ipsc_one_dim_buffered_time,
    ipsc_one_dim_unbuffered_time,
    ipsc_two_dim_time,
    mpt_min_time,
    mpt_optimal_packet,
    mpt_time,
    one_to_all_sbt_min_time,
    one_to_all_sbt_time,
    one_to_all_nport_min_time,
    some_to_all_time,
    spt_min_time,
    spt_optimal_packet,
    spt_time,
)
from repro.analysis.bounds import (
    all_to_all_lower_bound,
    one_to_all_lower_bound,
    transpose_lower_bound,
)
from repro.analysis.crossover import (
    break_even_processors,
    compare_one_vs_two_dim,
    one_dim_nport_min_time,
)
from repro.analysis.report import (
    AlgorithmEstimate,
    estimate_transpose_options,
    format_report,
    format_topology_heatmap,
)

__all__ = [
    "AlgorithmEstimate",
    "all_to_all_exchange_time",
    "all_to_all_lower_bound",
    "all_to_all_min_time",
    "all_to_all_nport_min_time",
    "break_even_processors",
    "compare_one_vs_two_dim",
    "dpt_min_time",
    "estimate_transpose_options",
    "format_report",
    "format_topology_heatmap",
    "dpt_time",
    "ipsc_one_dim_buffered_time",
    "ipsc_one_dim_unbuffered_time",
    "ipsc_two_dim_time",
    "mpt_min_time",
    "mpt_optimal_packet",
    "mpt_time",
    "one_dim_nport_min_time",
    "one_to_all_lower_bound",
    "one_to_all_nport_min_time",
    "one_to_all_sbt_min_time",
    "one_to_all_sbt_time",
    "some_to_all_time",
    "spt_min_time",
    "spt_optimal_packet",
    "spt_time",
    "transpose_lower_bound",
]
