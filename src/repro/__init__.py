"""repro — matrix transposition on Boolean n-cube ensemble architectures.

A from-scratch reproduction of S. Lennart Johnsson & Ching-Tien Ho,
*Algorithms for Matrix Transposition on Boolean n-cube Configured
Ensemble Architectures* (ICPP 1987 / YALEU/DCS/TR-572), built on a
deterministic link-level cube simulator.

Quick start::

    import numpy as np
    from repro import (
        CubeNetwork, DistributedMatrix, intel_ipsc, transpose,
        two_dim_cyclic,
    )

    layout = two_dim_cyclic(p=5, q=5, n_r=2, n_c=2)
    A = np.random.default_rng(0).standard_normal((32, 32))
    dm = DistributedMatrix.from_global(A, layout)
    net = CubeNetwork(intel_ipsc(layout.n))
    result = transpose(net, dm)
    assert result.verify_against(A)
    print(result.algorithm, result.stats.summary())

See DESIGN.md for the module map and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.layout.classify import CommClass, classify_transpose
from repro.layout.fields import Layout, ProcField
from repro.layout.matrix import DistributedMatrix
from repro.layout.partition import (
    column_consecutive,
    column_cyclic,
    combined_contiguous,
    row_consecutive,
    row_cyclic,
    two_dim_consecutive,
    two_dim_cyclic,
    two_dim_mixed,
)
from repro.machine.engine import CubeNetwork, EnsembleNetwork
from repro.machine.params import MachineParams, PortModel
from repro.machine.presets import connection_machine, custom_machine, intel_ipsc
from repro.topology import (
    Hypercube,
    SwappedDragonfly,
    Topology,
    TopologyError,
    TorusMesh,
    parse_topology,
)
from repro.transpose.exchange import BufferPolicy, convert_layout
from repro.transpose.planner import (
    TransposeResult,
    default_after_layout,
    select_algorithm,
    transpose,
)

__version__ = "1.0.0"

from repro.plans import (  # noqa: E402  (needs __version__ for provenance)
    BatchRequest,
    CompiledPlan,
    PlanCache,
    RecordingNetwork,
    capture_transpose,
    plan_key,
    replay_degraded,
    replay_plan,
    run_batch,
)
from repro.obs import (  # noqa: E402
    ChromeTraceSink,
    Instrumentation,
    JsonlSink,
    MetricsRegistry,
)
from repro.recovery import (  # noqa: E402
    CheckpointManager,
    RecoveryPolicy,
    RecoveryReport,
    execute_with_recovery,
    plan_surgery,
    run_chaos,
)

__all__ = [
    "BatchRequest",
    "BufferPolicy",
    "CheckpointManager",
    "ChromeTraceSink",
    "CommClass",
    "CompiledPlan",
    "CubeNetwork",
    "DistributedMatrix",
    "EnsembleNetwork",
    "Hypercube",
    "Instrumentation",
    "JsonlSink",
    "Layout",
    "MachineParams",
    "MetricsRegistry",
    "PlanCache",
    "PortModel",
    "ProcField",
    "RecordingNetwork",
    "RecoveryPolicy",
    "RecoveryReport",
    "SwappedDragonfly",
    "Topology",
    "TopologyError",
    "TorusMesh",
    "TransposeResult",
    "capture_transpose",
    "classify_transpose",
    "column_consecutive",
    "column_cyclic",
    "combined_contiguous",
    "connection_machine",
    "convert_layout",
    "custom_machine",
    "default_after_layout",
    "execute_with_recovery",
    "intel_ipsc",
    "parse_topology",
    "plan_key",
    "plan_surgery",
    "replay_degraded",
    "replay_plan",
    "row_consecutive",
    "row_cyclic",
    "run_batch",
    "run_chaos",
    "select_algorithm",
    "transpose",
    "two_dim_consecutive",
    "two_dim_cyclic",
    "two_dim_mixed",
    "__version__",
]
