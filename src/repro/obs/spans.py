"""Hierarchical spans and instant events on the model-time axis.

A :class:`Span` is one named interval of a run — the whole planned
transpose (category ``run``), one algorithm execution (``algorithm``),
one exchange sequence or pipelined tree level (``exchange`` /
``tree-level``), one routing invocation (``routing``), or a single
engine phase (``phase``).  Spans carry a parent id, so exporters can
reconstruct the tree; times are *model* seconds (the simulator's clock),
not wall-clock.

Spans are created through
:class:`~repro.obs.instrumentation.Instrumentation` and closed by its
context-manager protocol; an :class:`Event` marks an instant (a fault
encounter, a plan-cache outcome) at the hub's current clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Event", "Span"]


@dataclass
class Span:
    """One named interval on the model-time axis (see module docstring)."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def annotate(self, **attrs) -> None:
        """Attach or overwrite attributes on the span."""
        self.attrs.update(attrs)

    def count(self, key: str, amount: int = 1) -> None:
        """Increment a numeric annotation (e.g. ``faults`` seen inside)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class Event:
    """An instant occurrence at one point of model time."""

    name: str
    category: str
    time: float
    span_id: int | None
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "time": self.time,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }
