"""Hierarchical spans and instant events on two time axes.

A :class:`Span` is one named interval of a run — the whole planned
transpose (category ``run``), one algorithm execution (``algorithm``),
one exchange sequence or pipelined tree level (``exchange`` /
``tree-level``), one routing invocation (``routing``), a single engine
phase (``phase``), or one serving-stack stage (``request`` /
``service`` / ``plan`` / ``execute``).  Spans carry a parent id, so
exporters can reconstruct the tree.

Every span has a **model-time** interval (``start`` / ``end`` — the
simulator's clock, the sum of charged phase costs) and, when the owning
hub runs with an injected wall clock, a **wall-clock** interval
(``wall_start`` / ``wall_end`` — real seconds, the axis queue wait and
lock contention live on).  The two axes are independent: a queue-wait
span is wide on the wall axis and zero-width on the model axis.

Spans opened inside a :class:`~repro.obs.trace.TraceContext` carry its
``trace_id``, so one request's spans can be stitched into a single
trace tree across worker threads.

Spans are created through
:class:`~repro.obs.instrumentation.Instrumentation` and closed by its
context-manager protocol; an :class:`Event` marks an instant (a fault
encounter, a plan-cache outcome) at the hub's current clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Event", "Span"]


@dataclass
class Span:
    """One named interval on the model-time (and optionally wall) axis."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    #: Wall-clock interval (seconds on the hub's injected clock); both
    #: stay ``None`` on hubs without a wall axis.
    wall_start: float | None = None
    wall_end: float | None = None
    #: Trace the span belongs to (``None`` outside any trace context).
    trace_id: str | None = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def wall_duration(self) -> float:
        if self.wall_start is None or self.wall_end is None:
            raise ValueError(f"span {self.name!r} has no wall-clock interval")
        return self.wall_end - self.wall_start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def annotate(self, **attrs) -> None:
        """Attach or overwrite attributes on the span."""
        self.attrs.update(attrs)

    def count(self, key: str, amount: int = 1) -> None:
        """Increment a numeric annotation (e.g. ``faults`` seen inside)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def as_dict(self) -> dict:
        doc = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }
        if self.wall_start is not None:
            doc["wall_start"] = self.wall_start
            doc["wall_end"] = self.wall_end
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc


@dataclass(frozen=True)
class Event:
    """An instant occurrence at one point of model time."""

    name: str
    category: str
    time: float
    span_id: int | None
    attrs: dict = field(default_factory=dict)
    #: Wall-clock instant (``None`` on hubs without a wall axis).
    wall_time: float | None = None
    trace_id: str | None = None

    def as_dict(self) -> dict:
        doc = {
            "name": self.name,
            "category": self.category,
            "time": self.time,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }
        if self.wall_time is not None:
            doc["wall_time"] = self.wall_time
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc
