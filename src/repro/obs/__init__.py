"""Observability: span tracing, labelled metrics, exporters, baselines.

The telemetry layer of the simulator (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — the labelled counter/gauge/histogram
  registry that :class:`~repro.machine.metrics.TransferStats` is a typed
  view over;
* :mod:`repro.obs.spans` — hierarchical spans and instant events on the
  model-time axis;
* :mod:`repro.obs.instrumentation` — the hub that multiplexes engine,
  router, planner, plan-cache and replay emissions to any number of
  sinks (zero cost when unattached);
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSONL exporters;
* :mod:`repro.obs.baseline` — the perf-regression gate behind
  ``python -m repro baseline record|check``.
"""

from repro.obs.export import ChromeTraceSink, JsonlSink
from repro.obs.instrumentation import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
    instrumentation_of,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Event, Span

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NullInstrumentation",
    "Span",
    "instrumentation_of",
]
