"""Observability: span tracing, labelled metrics, exporters, baselines.

The telemetry layer of the simulator (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — the labelled counter/gauge/histogram
  registry that :class:`~repro.machine.metrics.TransferStats` is a typed
  view over;
* :mod:`repro.obs.spans` — hierarchical spans and instant events on the
  model-time axis;
* :mod:`repro.obs.instrumentation` — the hub that multiplexes engine,
  router, planner, plan-cache and replay emissions to any number of
  sinks (zero cost when unattached);
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSONL exporters (thread-safe: worker hubs
  may share one sink);
* :mod:`repro.obs.trace` — request-scoped distributed tracing:
  :class:`TraceContext` propagation, the per-worker
  :class:`FlightRecorder` ring, merged multi-worker dual-axis trace
  export and the trace well-formedness checker;
* :mod:`repro.obs.ops` — the live operational surface: Prometheus text
  exposition, the ``/metrics`` HTTP exporter, SLO burn-rate tracking
  and the ``repro top`` dashboard renderer;
* :mod:`repro.obs.baseline` — the perf-regression gate behind
  ``python -m repro baseline record|check``.
"""

from repro.obs.export import ChromeTraceSink, JsonlSink
from repro.obs.instrumentation import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
    instrumentation_of,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.ops import (
    BurnRateTracker,
    MetricsExporter,
    format_prometheus,
    render_top,
)
from repro.obs.spans import Event, Span
from repro.obs.trace import (
    FlightRecorder,
    TraceContext,
    merged_trace_document,
    spans_from_chrome_document,
    validate_trace,
)

__all__ = [
    "BurnRateTracker",
    "ChromeTraceSink",
    "Counter",
    "Event",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NullInstrumentation",
    "Span",
    "TraceContext",
    "format_prometheus",
    "instrumentation_of",
    "merged_trace_document",
    "render_top",
    "spans_from_chrome_document",
    "validate_trace",
]
