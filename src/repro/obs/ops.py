"""The live operational surface: exposition, burn rate, and `repro top`.

Everything the serving stack shows an operator while it runs lives
here (``docs/observability.md`` §6):

* :func:`format_prometheus` renders a merged
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format, so the same instruments the baseline gate pins are
  scrapeable;
* :class:`MetricsExporter` serves that text over HTTP
  (``repro serve --metrics-port`` / ``repro loadgen --metrics-port``);
* :class:`BurnRateTracker` turns an availability objective into a
  burn-rate signal with warn/page thresholds, folded into the server's
  SLO report.  It is count-windowed, not wall-windowed, so the signal
  is deterministic under the frozen clocks the test-suite runs with;
* :func:`render_top` draws the ``repro top`` ASCII dashboard from a
  server report.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "BurnRateTracker",
    "MetricsExporter",
    "format_prometheus",
    "render_top",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_OK.sub("_", name)


def _label_value(value) -> str:
    text = str(value)
    text = text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    return f'"{text}"'


def _labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f"{_NAME_OK.sub('_', k)}={_label_value(v)}"
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def format_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters and gauges map directly; a histogram — which keeps raw
    observations, not buckets — is exposed as its ``_count`` / ``_sum``
    series plus ``_min`` / ``_max`` gauges, which is what the dashboards
    in the docs plot.
    """
    families: dict[str, tuple[str, list[str]]] = {}
    for name, labels, kind, sample in registry.collect():
        if kind == "histogram":
            base = _metric_name(name)
            for suffix, fam_kind, value in (
                ("_count", "counter", sample["count"]),
                ("_sum", "counter", sample["sum"]),
                ("_min", "gauge", sample["min"]),
                ("_max", "gauge", sample["max"]),
            ):
                fam = families.setdefault(base + suffix, (fam_kind, []))
                fam[1].append(f"{base}{suffix}{_labels(labels)} {value}")
        else:
            base = _metric_name(name)
            fam = families.setdefault(base, (kind, []))
            fam[1].append(f"{base}{_labels(labels)} {sample}")
    lines: list[str] = []
    for base in sorted(families):
        kind, series = families[base]
        lines.append(f"# TYPE {base} {kind}")
        lines.extend(series)
    return "\n".join(lines) + "\n" if lines else ""


class MetricsExporter:
    """A background HTTP server exposing ``GET /metrics``.

    ``source`` is a zero-argument callable returning the registry to
    render on each scrape — typically ``server.metrics``, so every
    scrape sees a fresh merge of the worker registries.  Port 0 binds
    an ephemeral port; :meth:`start` returns the bound port.
    """

    def __init__(self, source, *, port: int = 0, host: str = "127.0.0.1"):
        self._source = source
        self._host = host
        self._port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._port
        return self._httpd.server_address[1]

    def start(self) -> int:
        if self._httpd is not None:
            return self.port
        source = self._source

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = format_prometheus(source()).encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # keep scrapes off stderr
                pass

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class BurnRateTracker:
    """Error-budget burn over a sliding window of recent requests.

    ``objective`` is the availability target (0.999 = at most one bad
    request per thousand).  A request is *bad* when it fails or misses
    its deadline.  The burn rate is the windowed bad fraction divided
    by the error budget ``1 - objective`` — burn 1.0 spends the budget
    exactly; sustained burn above ``warn``/``page`` trips the matching
    alert, mirroring multi-window burn-rate alerting practice.

    The window is the last ``window`` *requests*, not seconds, so the
    tracker gives identical answers under the deterministic frozen-clock
    scenarios and under a live soak.
    """

    def __init__(
        self,
        objective: float = 0.99,
        *,
        window: int = 100,
        warn: float = 1.0,
        page: float = 10.0,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.objective = objective
        self.window = window
        self.warn = warn
        self.page = page
        self._recent: list[bool] = []
        self.total = 0
        self.bad_total = 0
        self._lock = threading.Lock()

    def record(self, ok: bool) -> None:
        with self._lock:
            self.total += 1
            if not ok:
                self.bad_total += 1
            self._recent.append(not ok)
            if len(self._recent) > self.window:
                del self._recent[: len(self._recent) - self.window]

    def record_outcome(self, outcome) -> None:
        """Record a :class:`~repro.service.request.ServeOutcome`."""
        self.record(outcome.status == "served")

    @property
    def burn_rate(self) -> float:
        with self._lock:
            if not self._recent:
                return 0.0
            bad_rate = sum(self._recent) / len(self._recent)
        return bad_rate / (1.0 - self.objective)

    @property
    def alert(self) -> str:
        """``"ok"``, ``"warn"`` or ``"page"`` for the current burn."""
        burn = self.burn_rate
        if burn >= self.page:
            return "page"
        if burn >= self.warn:
            return "warn"
        return "ok"

    def snapshot(self) -> dict:
        burn = self.burn_rate
        with self._lock:
            observed = len(self._recent)
            bad = sum(self._recent)
        return {
            "objective": self.objective,
            "window": self.window,
            "observed": observed,
            "bad_in_window": bad,
            "bad_total": self.bad_total,
            "total": self.total,
            "burn_rate": burn,
            "alert": (
                "page" if burn >= self.page
                else "warn" if burn >= self.warn
                else "ok"
            ),
            "thresholds": {"warn": self.warn, "page": self.page},
        }


# -- the `repro top` dashboard ----------------------------------------------

_CLEAR = "\x1b[2J\x1b[H"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_top(
    report: dict, *, title: str = "repro top", clear: bool = False
) -> str:
    """One frame of the ``repro top`` dashboard.

    ``report`` is a :meth:`~repro.service.server.ServerReport.as_dict`
    document (the ``slo`` block optionally carrying the burn tracker's
    snapshot under ``"burn"``).  Returns plain ASCII; with ``clear``
    the frame is prefixed with the ANSI home/clear sequence so
    successive frames repaint in place during a soak.
    """
    slo = report.get("slo", {})
    queue = report.get("queue", {})
    lat = slo.get("latency_s", {})
    burn = slo.get("burn")
    lines = [
        f"{title} | workers {report.get('workers', '?')} | "
        f"wall {report.get('wall_seconds', 0.0):.2f}s",
        "-" * 72,
        (
            f"requests {slo.get('requests', 0):>6}   "
            f"admitted {slo.get('admitted', 0):>6}   "
            f"served {slo.get('served', 0):>6}   "
            f"rejected {slo.get('rejected', 0):>6}"
        ),
        (
            f"failed   {slo.get('failed', 0):>6}   "
            f"missed   {slo.get('deadline_missed', 0):>6}   "
            f"hit-rate {slo.get('cache_hit_rate', 0.0):>6.1%}   "
            f"thruput {slo.get('throughput_rps', 0.0):>7.1f}/s"
        ),
    ]
    depth = queue.get("depth", 0)
    capacity = queue.get("capacity") or 1
    lines.append(
        f"queue    [{_bar(depth / capacity)}] {depth}/{queue.get('capacity', '?')}"
    )
    if burn:
        lines.append(
            f"slo burn [{_bar(burn['burn_rate'] / max(burn['thresholds']['page'], 1e-9))}] "
            f"{burn['burn_rate']:.2f}x budget "
            f"(objective {burn['objective']:.3f}) -> {burn['alert'].upper()}"
        )
    if lat:
        lines.append("-" * 72)
        lines.append(
            f"{'latency (model s)':<20} {'p50':>10} {'p95':>10} "
            f"{'p99':>10} {'max':>10}"
        )
        for stage in ("total", "queue_wait", "execute"):
            pct = lat.get(stage)
            if not pct:
                continue
            lines.append(
                f"  {stage:<18} {pct['p50']:>10.4f} {pct['p95']:>10.4f} "
                f"{pct['p99']:>10.4f} {pct['max']:>10.4f}"
            )
    tenants = report.get("tenants", {})
    if tenants:
        lines.append("-" * 72)
        lines.append(
            f"{'tenant':<12} {'admitted':>8} {'served':>8} "
            f"{'missed':>8} {'failed':>8} {'rejected':>8}"
        )
        for name, t in tenants.items():
            lines.append(
                f"{name:<12} {t.get('admitted', 0):>8} {t.get('served', 0):>8} "
                f"{t.get('deadline_missed', 0):>8} {t.get('failed', 0):>8} "
                f"{t.get('rejected', 0):>8}"
            )
    frame = "\n".join(lines) + "\n"
    return (_CLEAR + frame) if clear else frame
