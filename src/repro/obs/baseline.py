"""Performance-regression gate over the simulator's deterministic counters.

Every quantity the engine reports — modelled time, start-ups, element
hops, per-link peak load — is a pure function of (machine, layout,
algorithm, fault spec), so a baseline is exact: two runs of the same
scenario on the same code produce bit-identical counters, and any drift
is a real behavioural change (a cost-model edit, a schedule change, a
lost exclusivity guarantee), never noise.  That makes a tolerance of
zero meaningful; the default keeps a hair of relative slack only for
float time accumulation order.

``python -m repro baseline record`` snapshots the pinned suite into
``benchmarks/baselines/*.json``; ``baseline check`` re-runs it and fails
with a per-counter diff on any breach.  CI runs the check on every push.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "BaselineReport",
    "BaselineScenario",
    "CounterDiff",
    "DEFAULT_SUITE",
    "DEFAULT_TOLERANCE",
    "check_baselines",
    "record_baselines",
    "run_scenario",
]

#: Relative slack for float counters; integer counters are compared
#: exactly whenever the baseline value is integral.
DEFAULT_TOLERANCE = 1e-9

#: Counters excluded from the gate: structured (non-scalar) views.
_NON_SCALAR = ("link_elements", "phase_times")


@dataclass(frozen=True)
class BaselineScenario:
    """One pinned benchmark point.

    ``faults`` is a :meth:`~repro.machine.faults.FaultPlan.from_spec`
    string (seeded specs are deterministic); ``cached`` routes the run
    through :func:`~repro.plans.replay.replay_degraded` with a plan
    cache, exercising capture + replay instead of direct execution;
    ``recovery`` (a :meth:`~repro.recovery.policy.RecoveryPolicy.from_spec`
    string) serves the scenario resume-based — checkpoints, rollbacks
    and plan surgery are then part of the pinned counters.
    ``integrity`` forces checksummed delivery on even without corruption
    faults (direct runs only), pinning the detection machinery's
    counters on the null path; corruption specs (``clinks=…`` /
    ``corrupt_rate=…`` fault tokens) arm it automatically.
    """

    id: str
    machine: str  # "ipsc" or "cm"
    n: int
    elements: int
    layout: str = "2d"
    algorithm: str = "auto"
    faults: str | None = None
    cached: bool = False
    recovery: str | None = None
    integrity: bool = False
    #: JSON string ``{"spec": <LoadSpec dict>, "config": <ServerConfig
    #: dict>}`` — when set, the scenario pins the serving layer's
    #: deterministic counters (admission, shedding, cache, recovery)
    #: via :func:`repro.service.deterministic_counters` and every other
    #: field above except ``id`` is ignored.  A string, not a dict, so
    #: the scenario stays hashable and its description JSON-stable.
    service: str | None = None
    #: Interconnect spec (``repro.topology.parse_topology`` syntax);
    #: non-cube scenarios pin the routed-universal path per topology.
    topology: str = "cube"
    #: Composite-pipeline spec (``repro.workloads`` grammar).  When set
    #: the scenario is served through
    #: :func:`repro.workloads.serve_workload` (cached compile + replay,
    #: recovery-based when ``faults``/``recovery`` are given) and
    #: ``elements``/``algorithm`` are descriptive only.
    workload: str | None = None

    def describe(self) -> dict:
        doc = {
            "id": self.id,
            "machine": self.machine,
            "n": self.n,
            "elements": self.elements,
            "layout": self.layout,
            "algorithm": self.algorithm,
            "faults": self.faults,
            "cached": self.cached,
            "recovery": self.recovery,
            "integrity": self.integrity,
            "service": self.service,
            "topology": self.topology,
        }
        if self.workload is not None:
            # Omitted when unset so the pre-workload baseline files
            # re-record byte-identically.
            doc["workload"] = self.workload
        return doc


#: The pinned suite: one point per paper regime plus the fault-ladder
#: and plan-cache paths.  Keep this list append-only — renaming or
#: re-parameterising an entry orphans its baseline file.
DEFAULT_SUITE: tuple[BaselineScenario, ...] = (
    BaselineScenario("cm_mpt_n4", "cm", 4, 1 << 8, algorithm="mpt"),
    BaselineScenario("cm_dpt_n4", "cm", 4, 1 << 8, algorithm="dpt"),
    BaselineScenario("cm_spt_n6", "cm", 6, 1 << 12, algorithm="spt"),
    BaselineScenario("ipsc_exchange_n4", "ipsc", 4, 1 << 10,
                     layout="1d-rows", algorithm="exchange"),
    BaselineScenario("ipsc_router_n4", "ipsc", 4, 1 << 8,
                     algorithm="router"),
    BaselineScenario("cm_faulted_ladder_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", faults="links=0-1+2-3,seed=3"),
    BaselineScenario("cm_cached_replay_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", cached=True),
    BaselineScenario("cm_faulted_cached_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", faults="links=0-1,seed=5",
                     cached=True),
    BaselineScenario("cm_recovery_transient_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", faults="tlinks=0-1@1-3",
                     cached=True, recovery="every=2"),
    BaselineScenario("cm_recovery_surgery_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", faults="links=0-1",
                     cached=True, recovery="every=2"),
    BaselineScenario(
        "service_multi_tenant_n4", "cm", 4, 1 << 8,
        service=json.dumps({
            "spec": {"seed": 7, "tenants": 4, "requests": 24,
                     "shapes": 3, "n": 4, "machine": "cm"},
            "config": {},
        }, sort_keys=True),
    ),
    BaselineScenario(
        "service_fault_storm_shed_n4", "cm", 4, 1 << 8,
        service=json.dumps({
            "spec": {"seed": 11, "tenants": 2, "requests": 24,
                     "shapes": 2, "n": 4, "machine": "cm",
                     "fault_rate": 0.5},
            "config": {"queue_capacity": 16, "tenant_pending": 6},
        }, sort_keys=True),
    ),
    # Integrity pair: the clean run pins the checksum machinery's null
    # path (overhead counter moves, nothing else may); the corrupt run
    # pins the full escalation — detect, retransmit, quarantine, then
    # route around the quarantined link on the terminal tier.
    BaselineScenario("integrity_clean_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", integrity=True),
    BaselineScenario("integrity_corrupt_n4", "cm", 4, 1 << 8,
                     algorithm="mpt", faults="clinks=0-1@0-2,seed=3"),
    # Cross-topology pair: the routed-universal floor on a 4x4x4 torus
    # and on a faulted swapped dragonfly, pinning the topology layer's
    # routing and fault handling end to end.
    BaselineScenario("torus_n64", "cm", 6, 1 << 12,
                     topology="torus:4x4x4"),
    BaselineScenario("dragonfly_k2m4", "cm", 4, 1 << 8,
                     topology="dragonfly:2,4",
                     faults="links=0-1,seed=9"),
    # Composite-pipeline pair: the served FFT data-movement plan (fused
    # dimperm+bitrev+transpose) and a faulted rectangular pipeline
    # recovering through plan surgery — pinning the workloads subsystem
    # end to end.
    BaselineScenario("fft_pipeline_n6", "cm", 6, 1 << 12,
                     workload="fft@64x64"),
    BaselineScenario("rect_13x11", "cm", 4, 13 * 11,
                     workload="pipeline:bitrev+transpose@13x11",
                     faults="links=0-1,seed=3", recovery="every=2"),
)


def _params_for(scenario: BaselineScenario, perturb=None):
    from repro.machine.presets import connection_machine, intel_ipsc

    factory = {"ipsc": intel_ipsc, "cm": connection_machine}[scenario.machine]
    params = factory(scenario.n)
    if perturb is not None:
        params = perturb(params)
    return params


def run_scenario(
    scenario: BaselineScenario,
    *,
    perturb: Callable | None = None,
    observer=None,
) -> dict:
    """Execute one scenario and return its scalar counters.

    ``perturb`` maps :class:`~repro.machine.params.MachineParams` to a
    modified copy before the run — the hook the gate's own tests use to
    prove a cost-model change trips the check.  ``observer`` (an
    :class:`~repro.obs.instrumentation.Instrumentation` hub) is attached
    to every network the scenario creates, so a baseline run can double
    as a trace-export run.
    """
    from repro.machine.engine import CubeNetwork
    from repro.machine.faults import FaultPlan
    from repro.plans.batch import resolve_problem
    from repro.plans.cache import PlanCache
    from repro.plans.recorder import synthetic_matrix
    from repro.plans.replay import replay_degraded
    from repro.transpose.planner import transpose

    if scenario.service is not None:
        # Serving-layer scenario: the counters come from a frozen-clock
        # single-worker run, so perturb/observer do not apply here.
        from repro.service import (
            LoadSpec,
            ServerConfig,
            deterministic_counters,
        )

        doc = json.loads(scenario.service)
        return deterministic_counters(
            LoadSpec.from_dict(doc.get("spec", {})),
            ServerConfig.from_dict(doc.get("config", {})),
        )

    if scenario.workload is not None:
        # Composite-pipeline scenario: cached compile + one serve, the
        # same path the server's workers take.
        from repro.workloads import build_pipeline, serve_workload

        params = _params_for(scenario, perturb)
        pipeline = build_pipeline(
            scenario.workload, scenario.n, layout=scenario.layout
        )
        faults = (
            FaultPlan.from_spec(scenario.n, scenario.faults)
            if scenario.faults
            else None
        )
        recovery = None
        if scenario.recovery is not None:
            from repro.recovery import RecoveryPolicy

            recovery = RecoveryPolicy.from_spec(scenario.recovery)
        served = serve_workload(
            pipeline,
            params,
            faults=faults,
            cache=PlanCache(),
            observer=observer,
            recovery=recovery,
        )
        counters = {
            k: v
            for k, v in served.stats.as_dict().items()
            if k not in _NON_SCALAR
        }
        counters["algorithm_tier"] = served.algorithm
        if served.recovery is not None:
            counters["resolved"] = served.resolved
        return counters

    from repro.topology import parse_topology

    params = _params_for(scenario, perturb)
    topo = parse_topology(scenario.topology, scenario.n)
    on_cube = topo.name == "cube"
    before, after = resolve_problem(
        scenario.n, scenario.elements, scenario.layout
    )
    faults = (
        FaultPlan.from_spec(
            scenario.n,
            scenario.faults,
            topology=None if on_cube else topo,
        )
        if scenario.faults
        else None
    )

    if scenario.cached:
        recovery = None
        if scenario.recovery is not None:
            from repro.recovery import RecoveryPolicy

            recovery = RecoveryPolicy.from_spec(scenario.recovery)
        cache = PlanCache()
        outcome = replay_degraded(
            params,
            before,
            after,
            faults=faults
            if faults is not None
            else FaultPlan.from_spec(
                scenario.n,
                "seed=0",
                topology=None if on_cube else topo,
            ),
            algorithm=scenario.algorithm,
            cache=cache,
            observer=observer,
            recovery=recovery,
            topology=topo,
        )
        stats, algorithm = outcome.stats, outcome.algorithm
        if outcome.recovery is not None:
            resolved = outcome.recovery.resolved
        else:
            resolved = None
    else:
        integrity = None
        if scenario.integrity:
            from repro.integrity import IntegrityManager

            integrity = IntegrityManager()
        network = CubeNetwork(
            params, faults=faults, integrity=integrity, topology=topo
        )
        if observer is not None:
            network.observer = observer
        result = transpose(
            network,
            synthetic_matrix(before),
            after,
            algorithm=scenario.algorithm,
        )
        stats, algorithm = result.stats, result.algorithm
        resolved = None

    counters = {
        k: v
        for k, v in stats.as_dict().items()
        if k not in _NON_SCALAR
    }
    counters["algorithm_tier"] = algorithm
    if resolved is not None:
        counters["resolved"] = resolved
    return counters


@dataclass(frozen=True)
class CounterDiff:
    """One counter whose value left the baseline's tolerance band."""

    scenario: str
    counter: str
    baseline: float | str
    current: float | str

    @property
    def relative(self) -> float | None:
        if isinstance(self.baseline, str) or isinstance(self.current, str):
            return None
        denom = max(abs(self.baseline), 1e-300)
        return (self.current - self.baseline) / denom

    def describe(self) -> str:
        rel = self.relative
        drift = "" if rel is None else f" ({rel:+.3%})"
        return (
            f"{self.scenario}.{self.counter}: baseline "
            f"{self.baseline!r} -> current {self.current!r}{drift}"
        )


@dataclass
class BaselineReport:
    """Outcome of a :func:`check_baselines` pass."""

    checked: int = 0
    missing: list[str] = field(default_factory=list)
    diffs: list[CounterDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing and not self.diffs

    def describe(self) -> str:
        if self.ok:
            return f"baseline check passed: {self.checked} scenario(s) clean"
        lines = [
            f"baseline check FAILED: {len(self.diffs)} counter breach(es), "
            f"{len(self.missing)} missing baseline(s) "
            f"across {self.checked} scenario(s)"
        ]
        lines += [f"  {d.describe()}" for d in self.diffs]
        lines += [
            f"  {sid}: no baseline recorded (run `repro baseline record`)"
            for sid in self.missing
        ]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checked": self.checked,
            "missing": list(self.missing),
            "diffs": [
                {
                    "scenario": d.scenario,
                    "counter": d.counter,
                    "baseline": d.baseline,
                    "current": d.current,
                    "relative": d.relative,
                }
                for d in self.diffs
            ],
        }


def _baseline_path(directory: str, scenario_id: str) -> str:
    return os.path.join(directory, f"{scenario_id}.json")


def record_baselines(
    directory: str,
    suite: tuple[BaselineScenario, ...] = DEFAULT_SUITE,
    *,
    perturb: Callable | None = None,
) -> list[str]:
    """Run the suite and write one baseline document per scenario."""
    from repro import __version__

    os.makedirs(directory, exist_ok=True)
    written = []
    for scenario in suite:
        doc = {
            "scenario": scenario.describe(),
            "counters": run_scenario(scenario, perturb=perturb),
            "code_version": __version__,
        }
        path = _baseline_path(directory, scenario.id)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written


def _within(baseline, current, rel_tol: float) -> bool:
    if isinstance(baseline, str) or isinstance(current, str):
        return baseline == current
    if baseline == current:
        return True
    return abs(current - baseline) <= rel_tol * max(abs(baseline), 1e-300)


def check_baselines(
    directory: str,
    suite: tuple[BaselineScenario, ...] = DEFAULT_SUITE,
    *,
    rel_tol: float = DEFAULT_TOLERANCE,
    perturb: Callable | None = None,
) -> BaselineReport:
    """Re-run the suite and diff every counter against its baseline.

    A counter passes when it matches exactly or within ``rel_tol``
    relative tolerance; counters present on only one side are breaches
    (a renamed counter is a behavioural change too).
    """
    report = BaselineReport()
    for scenario in suite:
        path = _baseline_path(directory, scenario.id)
        if not os.path.exists(path):
            report.missing.append(scenario.id)
            continue
        with open(path) as fh:
            recorded = json.load(fh)["counters"]
        current = run_scenario(scenario, perturb=perturb)
        report.checked += 1
        for counter in sorted(set(recorded) | set(current)):
            if counter not in recorded:
                report.diffs.append(
                    CounterDiff(scenario.id, counter, "<absent>",
                                current[counter])
                )
            elif counter not in current:
                report.diffs.append(
                    CounterDiff(scenario.id, counter, recorded[counter],
                                "<absent>")
                )
            elif not _within(recorded[counter], current[counter], rel_tol):
                report.diffs.append(
                    CounterDiff(scenario.id, counter, recorded[counter],
                                current[counter])
                )
    return report
