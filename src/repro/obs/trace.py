"""Request-scoped tracing: contexts, flight recording, merged export.

This is the distributed-tracing layer of the serving stack
(``docs/observability.md`` §5).  A :class:`TraceContext` is minted at
request submission and propagated through the admission queue, the
scheduler and the worker that executes the request, so every span and
event the request produces — on any worker thread — carries one
``trace_id`` and can be stitched back into a single trace tree.

Three pieces live here:

* :class:`TraceContext` — the identity that rides along with a request;
* :class:`FlightRecorder` — a bounded ring buffer of the most recent
  spans/events on one worker, dumped into a structured error report
  when a request ends badly (deadline exceeded, fault escalation,
  invariant violation);
* the merged exporter and well-formedness checker —
  :func:`merged_trace_document` renders every worker's telemetry into
  one Perfetto-loadable file (one track per worker on each of the two
  time axes) and :func:`validate_trace` proves the result is a forest
  of well-nested trees with exactly one root per trace id.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.spans import Event, Span

__all__ = [
    "FlightRecorder",
    "TraceContext",
    "merged_trace_document",
    "spans_from_chrome_document",
    "validate_trace",
]

#: Model/wall seconds -> trace microseconds (the unit Chrome tooling expects).
_US = 1e6

#: Absolute slack for interval-containment checks: model times are sums
#: of float phase costs, so parent/child endpoints may differ in the
#: last ulp after microsecond scaling.
_EPS = 1e-9


@dataclass(frozen=True)
class TraceContext:
    """The identity one request's telemetry is keyed by.

    Minted once, at submission (see
    :meth:`repro.service.server.TransposeServer.submit`), and carried on
    the resolved request through the queue to the worker; every span and
    event emitted while the worker holds the context (via
    :meth:`~repro.obs.instrumentation.Instrumentation.in_trace`) is
    stamped with ``trace_id``.
    """

    trace_id: str
    request_id: int
    tenant: str = ""
    priority: int = 0

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "priority": self.priority,
        }


class FlightRecorder:
    """A bounded ring of the most recent telemetry on one worker.

    Registered as a hub sink, it keeps the last ``capacity`` spans and
    events as compact dicts.  It is *always* cheap to run (append to a
    bounded deque) and only ever read when something went wrong:
    :meth:`dump` snapshots the ring into a structured error report that
    names the failing request, which the server collects and the CLI
    writes out as an artifact.

    One recorder belongs to one worker thread (like the hub it taps),
    so no locking is needed on the hot path; dumps happen either on the
    owning thread or after the pool has drained.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be at least 1")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0

    # -- hub hooks -----------------------------------------------------------
    # The hot path is a counter bump and a bounded-deque append of the
    # telemetry object itself; serialization cost is paid only at dump
    # time, which only happens when a request already went wrong.

    def on_span(self, span: Span) -> None:
        self.recorded += 1
        self._ring.append(("span", span))

    def on_event(self, event: Event) -> None:
        self.recorded += 1
        self._ring.append(("event", event))

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> list[dict]:
        """The ring contents as dicts, oldest first."""
        return [
            {"kind": kind, **item.as_dict()} for kind, item in self._ring
        ]

    def dump(self, **context) -> dict:
        """A structured error report around the current ring contents.

        ``context`` names what went wrong — at minimum the failing
        request (``request_id`` / ``trace_id``), its tenant and status.
        """
        records = self.records()
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": max(0, self.recorded - len(records)),
            "context": dict(context),
            "records": records,
        }

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0


# -- merged export ----------------------------------------------------------


def _span_sort_key(interval):
    start, length, span_id = interval
    return (start, -length, span_id)


def merged_trace_document(tracks) -> dict:
    """One Perfetto-loadable document over many workers and both axes.

    ``tracks`` is an iterable of ``(label, spans, events)`` triples —
    one per worker hub.  The document holds two Chrome "processes":
    pid 0 is the **wall-clock** axis, pid 1 the **model-time** axis;
    within each, every worker is one thread (track), named ``label``.
    Spans appear on the wall axis only when they carry a wall interval,
    so hubs without an armed wall clock still merge cleanly.

    Wall timestamps are re-based to the earliest wall instant in the
    document, keeping the trace readable near t=0.
    """
    tracks = list(tracks)
    out: list[dict] = []
    for pid, axis in ((0, "wall-clock"), (1, "model-time")):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"repro {axis}"},
            }
        )
    walls = [
        s.wall_start
        for _, spans, _ in tracks
        for s in spans
        if s.wall_start is not None
    ]
    walls += [
        e.wall_time for _, _, events in tracks for e in events
        if e.wall_time is not None
    ]
    epoch = min(walls) if walls else 0.0
    for tid, (label, spans, events) in enumerate(tracks):
        for pid in (0, 1):
            out.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": str(label)},
                }
            )
        # Model-time axis: every closed span, ordered so equal-start
        # parents precede their children (longer first, opener wins).
        for span in sorted(
            (s for s in spans if s.end is not None),
            key=lambda s: _span_sort_key((s.start, s.end - s.start, s.span_id)),
        ):
            out.append(_span_event(span, pid=1, tid=tid, ts=span.start,
                                   dur=span.end - span.start))
        # Wall-clock axis: spans that actually have a wall interval.
        for span in sorted(
            (s for s in spans
             if s.wall_start is not None and s.wall_end is not None),
            key=lambda s: _span_sort_key(
                (s.wall_start, s.wall_end - s.wall_start, s.span_id)
            ),
        ):
            out.append(_span_event(span, pid=0, tid=tid,
                                   ts=span.wall_start - epoch,
                                   dur=span.wall_end - span.wall_start))
        for event in events:
            instants = [(1, event.time)]
            if event.wall_time is not None:
                instants.append((0, event.wall_time - epoch))
            for pid, ts in instants:
                args = dict(event.attrs)
                if event.trace_id is not None:
                    args["trace_id"] = event.trace_id
                out.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "tid": tid,
                        "name": event.name,
                        "cat": event.category,
                        "ts": ts * _US,
                        "args": args,
                    }
                )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _span_event(span: Span, *, pid: int, tid: int, ts: float, dur: float) -> dict:
    args = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        **span.attrs,
    }
    if span.trace_id is not None:
        args["trace_id"] = span.trace_id
    return {
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "name": span.name,
        "cat": span.category,
        "ts": ts * _US,
        "dur": dur * _US,
        "args": args,
    }


def spans_from_chrome_document(doc: dict) -> list[tuple[str, list[Span]]]:
    """Reconstruct per-track spans from a :func:`merged_trace_document`.

    Returns ``(label, spans)`` per worker track, with model intervals
    taken from the model-time process (pid 1) and wall intervals — when
    the track has any — re-attached from the wall-clock process (pid 0).
    This is the inverse the well-formedness check script runs over a
    trace file, so what is validated is what was actually exported.
    """
    labels: dict[int, str] = {}
    by_track: dict[int, dict[int, Span]] = {}
    walls: dict[tuple[int, int], tuple[float, float]] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            labels.setdefault(ev["tid"], ev["args"]["name"])
            continue
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        if "span_id" not in args:
            continue
        tid, sid = ev["tid"], args["span_id"]
        start, dur = ev["ts"] / _US, ev["dur"] / _US
        if ev["pid"] == 1:
            attrs = {
                k: v
                for k, v in args.items()
                if k not in ("span_id", "parent_id", "trace_id")
            }
            by_track.setdefault(tid, {})[sid] = Span(
                span_id=sid,
                parent_id=args.get("parent_id"),
                name=ev.get("name", ""),
                category=ev.get("cat", ""),
                start=start,
                end=start + dur,
                attrs=attrs,
                trace_id=args.get("trace_id"),
            )
        elif ev["pid"] == 0:
            walls[(tid, sid)] = (start, start + dur)
    for (tid, sid), (ws, we) in walls.items():
        span = by_track.get(tid, {}).get(sid)
        if span is not None:
            span.wall_start, span.wall_end = ws, we
    return [
        (labels.get(tid, f"track-{tid}"), list(spans.values()))
        for tid, spans in sorted(by_track.items())
    ]


# -- well-formedness --------------------------------------------------------


def validate_trace(tracks) -> list[str]:
    """Structural problems in an exported trace (``[]`` = well-formed).

    ``tracks`` is an iterable of ``(label, spans)`` pairs, one per
    worker.  Checks, per track:

    * span ids are unique and every ``parent_id`` resolves (no orphans);
    * every parent interval contains its children on the model axis
      and — where both carry one — on the wall axis;
    * a child inside a traced span carries the same ``trace_id``.

    And globally: every ``trace_id`` has exactly one root span and all
    of its spans live on a single track (one request never migrates
    between workers mid-flight).
    """
    problems: list[str] = []
    trace_roots: dict[str, list[str]] = {}
    trace_tracks: dict[str, set[str]] = {}
    for label, spans in tracks:
        spans = list(spans)
        by_id: dict[int, Span] = {}
        for span in spans:
            if span.span_id in by_id:
                problems.append(
                    f"{label}: duplicate span id {span.span_id}"
                )
            by_id[span.span_id] = span
        for span in spans:
            where = f"{label}: span {span.span_id} ({span.name})"
            if span.end is None:
                problems.append(f"{where} never closed")
                continue
            if span.trace_id is not None:
                trace_tracks.setdefault(span.trace_id, set()).add(label)
            parent = (
                by_id.get(span.parent_id)
                if span.parent_id is not None
                else None
            )
            if span.parent_id is not None and parent is None:
                problems.append(
                    f"{where} is orphaned: parent {span.parent_id} "
                    "not in the export"
                )
                continue
            if span.trace_id is not None and (
                parent is None or parent.trace_id != span.trace_id
            ):
                trace_roots.setdefault(span.trace_id, []).append(
                    f"{label}/{span.span_id}"
                )
            if parent is None:
                continue
            if parent.trace_id is not None and span.trace_id != parent.trace_id:
                problems.append(
                    f"{where} carries trace {span.trace_id!r} inside "
                    f"parent trace {parent.trace_id!r}"
                )
            if parent.end is None:
                continue
            if (span.start < parent.start - _EPS
                    or span.end > parent.end + _EPS):
                problems.append(
                    f"{where} model interval [{span.start}, {span.end}] "
                    f"escapes parent [{parent.start}, {parent.end}]"
                )
            if (
                span.wall_start is not None
                and span.wall_end is not None
                and parent.wall_start is not None
                and parent.wall_end is not None
                and (
                    span.wall_start < parent.wall_start - _EPS
                    or span.wall_end > parent.wall_end + _EPS
                )
            ):
                problems.append(
                    f"{where} wall interval [{span.wall_start}, "
                    f"{span.wall_end}] escapes parent "
                    f"[{parent.wall_start}, {parent.wall_end}]"
                )
    for trace_id, roots in sorted(trace_roots.items()):
        if len(roots) != 1:
            problems.append(
                f"trace {trace_id!r} has {len(roots)} roots: "
                f"{', '.join(roots)}"
            )
    for trace_id, where in sorted(trace_tracks.items()):
        if len(where) != 1:
            problems.append(
                f"trace {trace_id!r} spans {len(where)} tracks: "
                f"{', '.join(sorted(where))}"
            )
    return problems
