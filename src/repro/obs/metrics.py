"""A labelled metrics registry: counters, gauges and histograms.

The registry is the single store every subsystem writes its counters
into.  An *instrument* is identified by a name plus a frozen label set
(``counter("faults", kind="link")`` and ``counter("faults", kind="node")``
are two series of one family), mirroring the Prometheus/OpenMetrics data
model the observability docs describe.  Instruments are memoized: asking
for the same ``(name, labels)`` twice returns the same object, so hot
paths bind an instrument once and call ``inc``/``observe`` on it with no
per-event allocation or lookup beyond a dict hit.

:class:`~repro.machine.metrics.TransferStats` is a typed view over one
of these registries — every field it exposes is backed by an instrument
here — so new subsystems add instruments instead of growing hand-merged
dataclass fields, and everything shows up uniformly in
``registry.as_dict()`` / ``registry.collect()``.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_labels",
]


def format_labels(labels: tuple[tuple[str, object], ...]) -> str:
    """Render a frozen label set as ``{k=v,...}`` (empty string if none)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A monotonically increasing numeric series (floats or ints)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def sample(self):
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}{format_labels(self.labels)}={self.value})"


class Gauge:
    """A point-in-time value (set freely; ``update_max`` keeps the peak)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def update_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def sample(self):
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name}{format_labels(self.labels)}={self.value})"


class Histogram:
    """A series of observations with count/sum/min/max and the raw values.

    The simulator's runs are small enough that keeping the raw
    observations is cheaper than getting bucket boundaries wrong; the
    per-phase durations view (``TransferStats.phase_times``) is exactly
    this list.
    """

    __slots__ = ("name", "labels", "values", "total")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]):
        self.name = name
        self.labels = labels
        self.values: list = []
        self.total = 0.0

    def observe(self, value) -> None:
        self.values.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.values)

    def sample(self) -> dict:
        return {
            "count": len(self.values),
            "sum": self.total,
            "min": min(self.values) if self.values else 0,
            "max": max(self.values) if self.values else 0,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{format_labels(self.labels)} "
            f"count={len(self.values)} sum={self.total})"
        )


class MetricsRegistry:
    """Memoizing factory and store for labelled instruments.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards; a name maps to exactly one
    instrument kind (mixing kinds under one name raises).
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple], object] = {}

    # -- instrument factories ----------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def _get(self, cls, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._instruments[key] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._instruments)

    def collect(self) -> Iterator[tuple[str, dict, str, object]]:
        """Yield ``(name, labels_dict, kind, sample)`` for every series."""
        for (name, labels), inst in sorted(
            self._instruments.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            yield name, dict(labels), inst.kind, inst.sample()

    def family(self, name: str) -> list:
        """Every instrument registered under ``name`` (any label set)."""
        return [
            inst for (n, _), inst in self._instruments.items() if n == name
        ]

    def as_dict(self) -> dict:
        """JSON-safe dump: ``name{labels}`` -> sample, grouped by kind."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, labels, kind, sample in self.collect():
            series = name + format_labels(tuple(sorted(labels.items())))
            out[kind + "s"][series] = sample
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges keep the max,
        histograms concatenate observations."""
        for (name, labels), inst in other._instruments.items():
            mine = self._get(type(inst), name, dict(labels))
            if isinstance(inst, Counter):
                mine.inc(inst.value)
            elif isinstance(inst, Gauge):
                mine.update_max(inst.value)
            else:
                for v in inst.values:
                    mine.observe(v)
