"""Telemetry exporters: Chrome trace-event JSON and JSONL event logs.

:class:`ChromeTraceSink` collects the spans and instant events an
:class:`~repro.obs.instrumentation.Instrumentation` hub emits and
renders them as Chrome trace-event JSON — load the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` and the run appears as
nested bars on the model-time axis: the ``run`` span on top, the
``algorithm`` span under it, each engine ``phase`` as a leaf.

:class:`JsonlSink` streams every closed span, instant event and raw
phase as one JSON object per line — the grep-able flight recorder.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.obs.spans import Event, Span

__all__ = ["ChromeTraceSink", "JsonlSink"]

#: Model seconds -> trace microseconds (the unit Chrome tooling expects).
_US = 1e6


class ChromeTraceSink:
    """Collects spans/events and renders Chrome trace-event JSON."""

    def __init__(self, *, pid: int = 0, tid: int = 0) -> None:
        self.pid = pid
        self.tid = tid
        self.spans: list[Span] = []
        self.events: list[Event] = []
        # Several worker hubs may legitimately share one sink; guard the
        # collections so concurrent appends never race a render.
        self._lock = threading.Lock()

    # -- hub hooks -----------------------------------------------------------

    def on_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def on_event(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    # -- rendering -----------------------------------------------------------

    def trace_events(self) -> list[dict]:
        """The trace as a list of Chrome trace-event dicts.

        Complete (``"X"``) events on one thread nest by containment, so
        they are ordered by start time with longer (outer) spans first
        at equal starts; at equal extents the opener (lower span id, the
        parent) wins.
        """
        with self._lock:
            spans = list(self.spans)
            events = list(self.events)
        out: list[dict] = [
            {
                "ph": "M",
                "pid": self.pid,
                "tid": self.tid,
                "name": "process_name",
                "args": {"name": "repro model time"},
            }
        ]
        for span in sorted(
            spans,
            key=lambda s: (s.start, -(s.end - s.start), s.span_id),
        ):
            args = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **span.attrs,
            }
            if span.trace_id is not None:
                args["trace_id"] = span.trace_id
            out.append(
                {
                    "ph": "X",
                    "pid": self.pid,
                    "tid": self.tid,
                    "name": span.name,
                    "cat": span.category,
                    "ts": span.start * _US,
                    "dur": (span.end - span.start) * _US,
                    "args": args,
                }
            )
        for event in events:
            out.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": self.pid,
                    "tid": self.tid,
                    "name": event.name,
                    "cat": event.category,
                    "ts": event.time * _US,
                    "args": dict(event.attrs),
                }
            )
        return out

    def document(self) -> dict:
        return {"traceEvents": self.trace_events(), "displayTimeUnit": "ms"}

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.document(), indent=indent)

    def write(self, path: str | os.PathLike) -> Path:
        """Write the trace document to ``path`` (returns the path)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(indent=1))
        return target


class JsonlSink:
    """Streams telemetry as JSON Lines.

    ``target`` is a path (opened lazily, closed by :meth:`close` /
    context exit) or any object with a ``write`` method; with no target
    the lines accumulate in :attr:`lines` — convenient in tests.
    """

    def __init__(self, target=None, *, raw_phases: bool = False) -> None:
        self.lines: list[str] = []
        self.raw_phases = raw_phases
        # One lock per sink: concurrent worker hubs pointed at a single
        # file must never interleave partial lines.
        self._lock = threading.Lock()
        self._fh = None
        self._owns = False
        if target is None:
            pass
        elif hasattr(target, "write"):
            self._fh = target
        else:
            self._fh = open(target, "w")
            self._owns = True

    def _emit(self, doc: dict) -> None:
        line = json.dumps(doc, sort_keys=True)
        with self._lock:
            if self._fh is not None:
                self._fh.write(line + "\n")
            else:
                self.lines.append(line)

    # -- hub hooks -----------------------------------------------------------

    def on_span(self, span: Span) -> None:
        self._emit({"type": "span", **span.as_dict()})

    def on_event(self, event: Event) -> None:
        self._emit({"type": "event", **event.as_dict()})

    def on_phase(self, transfers, duration) -> None:
        if self.raw_phases:
            self._emit(
                {
                    "type": "phase",
                    "messages": len(transfers),
                    "elements": sum(t[2] for t in transfers),
                    "duration": duration,
                }
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None and self._owns:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
