"""The instrumentation hub: one observer, any number of sinks.

:class:`Instrumentation` implements the engine's observer protocol
(``on_phase`` / ``on_local`` / ``on_fault`` / ``on_cache``) and adds the
span API the planner, router, exchange executor and replay layer emit
through.  It multiplexes everything to registered *sinks* — a
:class:`~repro.machine.trace.TraceRecorder`, a
:class:`~repro.obs.export.ChromeTraceSink`, a
:class:`~repro.obs.export.JsonlSink`, or anything implementing a subset
of the hook methods — and aggregates labelled metrics into a
:class:`~repro.obs.metrics.MetricsRegistry`.

The hub maintains a *model-time clock*: every observed phase or local
charge advances it by the charged duration, so spans and events land on
the same timeline the engine's :class:`~repro.machine.metrics.TransferStats`
accumulates, without the engine knowing about spans at all.  Passing an
injectable ``wall_clock`` callable arms a second, independent
**wall-clock axis**: every span then also records ``wall_start`` /
``wall_end`` real seconds, which is how queue wait, lock contention and
compile latency — invisible to the cost model — become observable.

A hub may also carry a stack of
:class:`~repro.obs.trace.TraceContext` objects (see :meth:`in_trace`);
spans and events opened inside inherit the innermost ``trace_id``, so a
request's telemetry is attributable across subsystems.

The zero-observer fast path stays allocation-free: code that may or may
not be instrumented asks :func:`instrumentation_of` for the hub and gets
the shared :data:`NULL_INSTRUMENTATION` when none is attached, whose
``span()`` returns one shared no-op context manager.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Event, Span

__all__ = [
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "NullInstrumentation",
    "instrumentation_of",
]

_SINK_HOOKS = (
    "on_phase",
    "on_local",
    "on_fault",
    "on_cache",
    "on_recovery",
    "on_span",
    "on_event",
)


class _NullSpan:
    """Shared, inert span: accepts annotations and discards them."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs):
        pass

    def count(self, key, amount=1):
        pass


_NULL_SPAN = _NullSpan()


class _NullTraceScope:
    """Shared, inert trace scope."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TRACE_SCOPE = _NullTraceScope()


class NullInstrumentation:
    """The no-op hub: every call is free and allocation-free."""

    __slots__ = ()

    enabled = False

    def span(self, name, category="span", *, wall_start=None, **attrs):
        return _NULL_SPAN

    def leaf(self, name, category="span", **kwargs):
        return _NULL_SPAN

    def in_trace(self, context):
        return _NULL_TRACE_SCOPE

    def event(self, name, category="event", **attrs):
        pass

    def recovery(self, action, **attrs):
        pass

    def current_span(self):
        return None


NULL_INSTRUMENTATION = NullInstrumentation()


def instrumentation_of(network) -> "Instrumentation | NullInstrumentation":
    """The hub attached as ``network.observer``, or the shared null hub.

    This is how emission points inside algorithms stay free when nobody
    is watching: attaching any other observer (e.g. a bare
    :class:`~repro.machine.trace.TraceRecorder`) keeps phase events
    flowing to it while span emission no-ops.
    """
    observer = getattr(network, "observer", None)
    if isinstance(observer, Instrumentation):
        return observer
    return NULL_INSTRUMENTATION


class _TraceScope:
    """Context manager pushing one trace context onto its hub's stack.

    A ``None`` context is a no-op scope, so call sites don't branch on
    whether tracing is armed.
    """

    __slots__ = ("_hub", "context")

    def __init__(self, hub: "Instrumentation", context) -> None:
        self._hub = hub
        self.context = context

    def __enter__(self):
        if self.context is not None:
            self._hub._traces.append(self.context)
        return self.context

    def __exit__(self, *exc) -> bool:
        if self.context is not None:
            popped = self._hub._traces.pop()
            if popped is not self.context:
                raise RuntimeError("trace contexts exited out of order")
        return False


class _SpanContext:
    """Context manager pairing one open span with its hub."""

    __slots__ = ("_hub", "span")

    def __init__(self, hub: "Instrumentation", span: Span) -> None:
        self._hub = hub
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._hub._close(self.span)
        return False


class Instrumentation:
    """Span/metric/event hub; set as ``network.observer``.

    ``phase_spans=True`` (the default) synthesizes a leaf span per
    observed communication phase and local charge, giving Chrome traces
    the full run → algorithm → phase nesting; flip it off for long runs
    where per-phase spans would dominate the trace.
    """

    enabled = True

    def __init__(
        self,
        *sinks,
        registry: MetricsRegistry | None = None,
        phase_spans: bool = True,
        wall_clock=None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.phase_spans = phase_spans
        #: Model-time cursor: total observed duration so far.
        self.clock = 0.0
        #: Injectable wall clock (seconds); ``None`` disables the axis.
        self.wall_clock = wall_clock
        self.spans: list[Span] = []  # closed spans, in close order
        self.events: list[Event] = []
        self._stack: list[Span] = []
        self._traces: list = []  # TraceContext stack (innermost last)
        self._next_id = 0
        self._hooks: dict[str, list] = {hook: [] for hook in _SINK_HOOKS}
        self.sinks: list = []
        for sink in sinks:
            self.add_sink(sink)

    # -- sink management ----------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register a sink; only the hooks it defines are dispatched to."""
        self.sinks.append(sink)
        for hook in _SINK_HOOKS:
            fn = getattr(sink, hook, None)
            if fn is not None:
                self._hooks[hook].append(fn)

    def attach(self, network) -> "Instrumentation":
        """Install this hub as the network's observer (returns self)."""
        network.observer = self
        return self

    # -- span API ------------------------------------------------------------

    def _wall(self) -> float | None:
        return None if self.wall_clock is None else self.wall_clock()

    def _trace_id(self) -> str | None:
        return self._traces[-1].trace_id if self._traces else None

    def in_trace(self, context) -> "_TraceScope":
        """Scope every span/event opened inside to ``context``.

        ``context`` is a :class:`~repro.obs.trace.TraceContext` (or
        ``None``, making the scope a no-op); use as a context manager.
        Scopes nest — the innermost context wins.
        """
        return _TraceScope(self, context)

    def span(
        self,
        name: str,
        category: str = "span",
        *,
        wall_start: float | None = None,
        **attrs,
    ) -> _SpanContext:
        """Open a child span of the current one; use as a context manager.

        ``wall_start`` backdates the span's wall-clock interval — the
        serving layer uses this to open a request's root span at its
        *submission* time, so the synthesized queue-wait leaf stays
        contained in its parent on the wall axis.
        """
        parent = self._stack[-1].span_id if self._stack else None
        if wall_start is None:
            wall_start = self._wall()
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            category=category,
            start=self.clock,
            attrs=attrs,
            wall_start=wall_start,
            trace_id=self._trace_id(),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def leaf(
        self,
        name: str,
        category: str = "span",
        *,
        start: float | None = None,
        end: float | None = None,
        wall_start: float | None = None,
        wall_end: float | None = None,
        **attrs,
    ) -> Span:
        """Record a pre-closed child span with explicit intervals.

        Defaults put the leaf at the current cursor on both axes
        (zero-width); the serving layer passes explicit wall intervals
        for stages it reconstructs after the fact (admission wait,
        queue wait).  The leaf parents under the currently open span.
        """
        now_wall = self._wall()
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start=self.clock if start is None else start,
            end=self.clock if end is None else end,
            attrs=attrs,
            wall_start=now_wall if wall_start is None else wall_start,
            wall_end=now_wall if wall_end is None else wall_end,
            trace_id=self._trace_id(),
        )
        self._next_id += 1
        self.spans.append(span)
        self.metrics.counter("spans", category=span.category).inc()
        for fn in self._hooks["on_span"]:
            fn(span)
        return span

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def current_algorithm(self) -> str | None:
        """Name of the innermost enclosing ``algorithm`` span, if any."""
        for span in reversed(self._stack):
            if span.category == "algorithm":
                return span.name
        return None

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[s.name for s in self._stack]}"
            )
        self._stack.pop()
        span.end = self.clock
        if span.wall_start is not None and span.wall_end is None:
            span.wall_end = self._wall()
        self.spans.append(span)
        self.metrics.counter("spans", category=span.category).inc()
        for fn in self._hooks["on_span"]:
            fn(span)

    def _leaf(self, name: str, category: str, start: float, attrs: dict) -> None:
        """A pre-closed leaf span (synthesized around an observed charge).

        On the wall axis an observed charge is an instant — the model
        clock advanced, the wall clock barely did — so both wall bounds
        read the current wall time.
        """
        parent = self._stack[-1].span_id if self._stack else None
        wall = self._wall()
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            category=category,
            start=start,
            end=self.clock,
            attrs=attrs,
            wall_start=wall,
            wall_end=wall,
            trace_id=self._trace_id(),
        )
        self._next_id += 1
        self.spans.append(span)
        for fn in self._hooks["on_span"]:
            fn(span)

    def event(self, name: str, category: str = "event", **attrs) -> None:
        """Record an instant event at the current model time."""
        parent = self._stack[-1].span_id if self._stack else None
        evt = Event(
            name=name,
            category=category,
            time=self.clock,
            span_id=parent,
            attrs=attrs,
            wall_time=self._wall(),
            trace_id=self._trace_id(),
        )
        self.events.append(evt)
        for fn in self._hooks["on_event"]:
            fn(evt)

    # -- observer protocol (called by the engine and the plan cache) ---------

    def on_phase(self, transfers: list, duration: float) -> None:
        start = self.clock
        self.clock += duration
        algorithm = self.current_algorithm() or "-"
        elements = sum(t[2] for t in transfers)
        self.metrics.counter("phases", algorithm=algorithm).inc()
        self.metrics.histogram(
            "phase_duration", algorithm=algorithm
        ).observe(duration)
        if elements:
            self.metrics.counter(
                "elements_moved", algorithm=algorithm
            ).inc(elements)
        if self._stack:
            self._stack[-1].count("phases")
        if self.phase_spans and transfers:
            self._leaf(
                "phase",
                "phase",
                start,
                {"messages": len(transfers), "elements": elements},
            )
        for fn in self._hooks["on_phase"]:
            fn(transfers, duration)

    def on_local(self, elements: int, duration: float) -> None:
        start = self.clock
        self.clock += duration
        algorithm = self.current_algorithm() or "-"
        self.metrics.counter("local_charges", algorithm=algorithm).inc()
        self.metrics.histogram(
            "local_duration", algorithm=algorithm
        ).observe(duration)
        if self.phase_spans:
            self._leaf("local", "local", start, {"elements": elements})
        for fn in self._hooks["on_local"]:
            fn(elements, duration)

    def on_fault(self, src: int, dst: int, phase: int, kind: str) -> None:
        self.metrics.counter("fault_encounters", kind=kind).inc()
        for span in self._stack:
            span.count("faults")
        self.event(
            "fault", "fault", src=src, dst=dst, phase=phase, kind=kind
        )
        for fn in self._hooks["on_fault"]:
            fn(src, dst, phase, kind)

    def recovery(self, action: str, **attrs) -> None:
        """Record one recovery action (backoff / surgery / ladder).

        Increments ``recovery_actions{action=...}``, stamps a
        ``recoveries`` count on every open span, lands an instant
        ``recovery`` event on the model timeline (visible in Chrome
        traces), and dispatches to sinks defining ``on_recovery``.
        """
        self.metrics.counter("recovery_actions", action=action).inc()
        for span in self._stack:
            span.count("recoveries")
        self.event("recovery", "recovery", action=action, **attrs)
        for fn in self._hooks["on_recovery"]:
            fn(action, attrs)

    def on_cache(self, key: str, event: str) -> None:
        self.metrics.counter("plan_cache_events", event=event).inc()
        for span in self._stack:
            span.count(f"cache_{event}_events")
        self.event("plan-cache", "cache", key=key[:16], event=event)
        for fn in self._hooks["on_cache"]:
            fn(key, event)

    # -- introspection -------------------------------------------------------

    def span_tree(self) -> dict[int | None, list[Span]]:
        """Closed spans grouped by parent id (children in close order)."""
        tree: dict[int | None, list[Span]] = {}
        for span in self.spans:
            tree.setdefault(span.parent_id, []).append(span)
        return tree

    def roots(self) -> Iterable[Span]:
        return [s for s in self.spans if s.parent_id is None]
