"""k-ary n-dimensional torus / mesh topologies.

A :class:`TorusMesh` lays nodes out on an n-dimensional grid with the
given per-axis radices; node ids are mixed-radix with axis 0 fastest
(mirroring the cube's "dimension 0 is the least significant bit").  With
``wrap=True`` (the default) every axis closes into a ring — a k-ary
n-cube in the classic taxonomy — and the topology is regular and
vertex-transitive.  With ``wrap=False`` it is an open mesh: boundary
nodes lose their wrap links, so the degree is irregular and the
diameter grows from ``sum(k_i // 2)`` to ``sum(k_i - 1)``.

Distances and minimal hops are analytic (per-axis ring/line distance),
so routing needs no BFS.  A wrapped radix-2 axis contributes a single
link (both directions round the 2-ring land on the same neighbour);
a ``TorusMesh((2,) * n)`` is therefore exactly the Boolean n-cube graph.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology, TopologyError

__all__ = ["TorusMesh"]


class TorusMesh(Topology):
    """k-ary n-dimensional torus (``wrap=True``) or open mesh."""

    def __init__(self, dims: Sequence[int], *, wrap: bool = True) -> None:
        dims = tuple(int(k) for k in dims)
        if not dims:
            raise TopologyError("a torus/mesh needs at least one axis")
        for k in dims:
            if k < 2:
                raise TopologyError(
                    f"torus/mesh axis radices must be >= 2, got {k} in {dims}"
                )
        self.dims = dims
        self.wrap = wrap
        self.name = "torus" if wrap else "mesh"
        self.spec = f"{self.name}:" + "x".join(str(k) for k in dims)
        num = 1
        strides = []
        for k in dims:
            strides.append(num)
            num *= k
        self._strides = tuple(strides)
        self.num_nodes = num
        # Open meshes have boundary nodes of lower degree; wrapped tori
        # are regular (a radix-2 axis gives *every* node one link on it).
        self.claims_regular = wrap

    # -- coordinates -------------------------------------------------------

    def coords(self, x: int) -> tuple[int, ...]:
        """Per-axis coordinates of node ``x`` (axis 0 first)."""
        self.check_node(x)
        return tuple(
            (x // stride) % k for stride, k in zip(self._strides, self.dims)
        )

    def node_at(self, coords: Sequence[int]) -> int:
        """Flat node id of the given per-axis coordinates."""
        if len(coords) != len(self.dims):
            raise TopologyError(
                f"{self.spec}: expected {len(self.dims)} coordinates, "
                f"got {len(coords)}"
            )
        x = 0
        for c, k, stride in zip(coords, self.dims, self._strides):
            if not 0 <= c < k:
                raise TopologyError(
                    f"{self.spec}: coordinate {c} outside axis of radix {k}"
                )
            x += c * stride
        return x

    def _step(self, x: int, axis: int, delta: int) -> int | None:
        """Neighbour of ``x`` one step along ``axis``, or ``None`` at an edge."""
        k = self.dims[axis]
        stride = self._strides[axis]
        c = (x // stride) % k
        nc = c + delta
        if self.wrap:
            nc %= k
        elif not 0 <= nc < k:
            return None
        return x + (nc - c) * stride

    # -- graph surface -----------------------------------------------------

    def neighbors(self, x: int) -> tuple[int, ...]:
        out: list[int] = []
        for axis in range(len(self.dims)):
            fwd = self._step(x, axis, +1)
            bwd = self._step(x, axis, -1)
            if fwd is not None:
                out.append(fwd)
            if bwd is not None and bwd != fwd:
                out.append(bwd)
        return tuple(out)

    # -- metric surface ----------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        self.check_node(a)
        self.check_node(b)
        total = 0
        for stride, k in zip(self._strides, self.dims):
            ca = (a // stride) % k
            cb = (b // stride) % k
            d = abs(ca - cb)
            if self.wrap:
                d = min(d, k - d)
            total += d
        return total

    def minimal_hops(
        self, cur: int, dst: int, *, ascending: bool = True
    ) -> list[int]:
        hops: list[int] = []
        for axis, (stride, k) in enumerate(zip(self._strides, self.dims)):
            cc = (cur // stride) % k
            cd = (dst // stride) % k
            if cc == cd:
                continue
            fwd = (cd - cc) % k
            bwd = (cc - cd) % k
            if self.wrap:
                if fwd <= bwd:
                    hops.append(self._step(cur, axis, +1))
                if bwd <= fwd:
                    nxt = self._step(cur, axis, -1)
                    # On a radix-2 axis both directions reach the same
                    # neighbour; list it once.
                    if not hops or hops[-1] != nxt:
                        hops.append(nxt)
            else:
                hops.append(self._step(cur, axis, +1 if cd > cc else -1))
        if not ascending:
            hops.reverse()
        return hops

    @property
    def diameter(self) -> int:
        return sum(k // 2 if self.wrap else k - 1 for k in self.dims)

    def bisection_links(self) -> int:
        # Cut across the last (slowest-varying) axis between the two
        # halves of its radix: each of the other-node combinations
        # contributes 2 directed links per cut plane (2 planes wrapped).
        last = self.dims[-1]
        plane = self.num_nodes // last
        planes = 2 if (self.wrap and last > 2) else 1
        return 2 * plane * planes
