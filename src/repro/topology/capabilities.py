"""Per-topology planner capability table.

The paper's scheduled algorithms (SPT/DPT/MPT trees, dimension
exchanges, the pairwise family) prove their conflict-freedom lemmas on
Boolean-cube structure — edge-disjoint Hamiltonian-path trees, dimension
permutations, subcube recursion — so they only run on the hypercube.
The routed tiers make no structural assumption beyond strong
connectivity: ``router`` hands (source, destination) pairs to minimal-
path routing, and ``routed-universal`` additionally derives the pairs
from the layout algebra alone.  ``routed-universal`` is therefore the
floor available on *every* topology, and the planner's degradation
ladder lands there whenever a topology (or a fault pattern) rules the
scheduled tiers out.
"""

from __future__ import annotations

from repro.topology.base import Topology

__all__ = ["supported_algorithms", "capability_table"]

#: Every algorithm name the planner can execute on a Boolean cube.
CUBE_ALGORITHMS: tuple[str, ...] = (
    "mpt",
    "dpt",
    "spt",
    "router",
    "routed-universal",
    "exchange",
    "block-exchange",
    "block-sbnt",
    "mixed-combined",
    "mixed-naive",
)

#: Algorithms whose correctness needs only strong connectivity.
UNIVERSAL_ALGORITHMS: tuple[str, ...] = ("routed-universal",)


def supported_algorithms(topology: Topology | None) -> tuple[str, ...]:
    """Algorithm names the planner may run on ``topology``.

    ``None`` means the historical implicit hypercube.  The cube keeps
    the full ladder; every other topology gets the routed-universal
    floor (minimal-path routing plus the layout algebra needs nothing
    cube-shaped).
    """
    if topology is None or topology.name == "cube":
        return CUBE_ALGORITHMS
    return UNIVERSAL_ALGORITHMS


def capability_table(topology: Topology | None) -> dict[str, bool]:
    """Algorithm -> supported mapping for reports and ``advise`` output."""
    supported = set(supported_algorithms(topology))
    return {name: name in supported for name in CUBE_ALGORITHMS}
