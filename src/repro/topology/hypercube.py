"""The Boolean n-cube as a :class:`~repro.topology.base.Topology`.

This adapter wraps the analytic cube functions of
:mod:`repro.cube.topology` behind the topology protocol *bit-for-bit*:
neighbour order is lowest dimension first, minimal hops are the e-cube
dimension-ordered candidates, :meth:`directed_links` reproduces the
historical ``for x: for d: (x, x ^ 2^d)`` fault-sampling stream, and
:meth:`check_link` raises the engine's original error messages in the
original order.  Every pinned baseline and recorded fault plan therefore
replays identically through the generic engine.
"""

from __future__ import annotations

from typing import Iterator

from repro.codes.bits import hamming
from repro.cube.topology import dimension_of_edge, is_edge
from repro.topology.base import Topology

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """Boolean n-cube: ``2^n`` nodes, XOR adjacency across ``n`` dimensions.

    The canonical spec is plain ``"cube"``: the dimension already travels
    with :class:`~repro.machine.params.MachineParams` (and in serialized
    plans with :class:`~repro.plans.ir.MachineSpec`), so two machines
    agree on the topology exactly when their specs and node counts match.
    """

    name = "cube"
    spec = "cube"

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"cube dimension must be non-negative, got {n}")
        self.n = n
        self.num_nodes = 1 << n

    # -- graph surface -----------------------------------------------------

    def neighbors(self, x: int) -> tuple[int, ...]:
        return tuple(x ^ (1 << d) for d in range(self.n))

    def degree(self, x: int) -> int:
        return self.n

    def has_link(self, src: int, dst: int) -> bool:
        if src >> self.n or dst >> self.n or src < 0 or dst < 0:
            return False
        return is_edge(src, dst)

    def directed_links(self) -> Iterator[tuple[int, int]]:
        for x in range(self.num_nodes):
            for d in range(self.n):
                yield (x, x ^ (1 << d))

    def num_links(self) -> int:
        return self.num_nodes * self.n

    # -- node / link validation -------------------------------------------

    def check_link(self, src: int, dst: int) -> None:
        # Preserves the engine's historical check order and messages:
        # edge-ness first ("... are not cube neighbours"), bounds second.
        dimension_of_edge(src, dst)
        if src >> self.n or dst >> self.n or src < 0 or dst < 0:
            raise ValueError(
                f"message {src}->{dst} outside {self.n}-cube"
            )

    # -- metric surface ----------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        return hamming(a, b)

    def minimal_hops(
        self, cur: int, dst: int, *, ascending: bool = True
    ) -> list[int]:
        diff = cur ^ dst
        hops = [cur ^ (1 << d) for d in range(self.n) if (diff >> d) & 1]
        if not ascending:
            hops.reverse()
        return hops

    @property
    def diameter(self) -> int:
        return self.n

    def bisection_links(self) -> int:
        # Cutting the top dimension severs one directed link pair per
        # node pair across the cut: N/2 * 2 = N directed links.
        return self.num_nodes
