"""The :class:`Topology` protocol: one graph abstraction for every network.

The paper's machines are Boolean n-cubes, but the simulator's engine,
router, fault machinery and planner only ever need a small graph surface:
which nodes exist, which directed links exist, what the minimal next hops
towards a destination are, and how far apart two nodes lie.  This module
defines that surface as an abstract base class; concrete interconnects
(:class:`~repro.topology.hypercube.Hypercube`,
:class:`~repro.topology.torus.TorusMesh`,
:class:`~repro.topology.dragonfly.SwappedDragonfly`) fill in the graph,
and everything above the engine stays topology-agnostic.

Every topology is a directed graph over nodes ``0..num_nodes-1``.  All
shipped instances are link-symmetric (``(a, b)`` exists iff ``(b, a)``
does — the machines' links are bidirectional), but the protocol keeps the
directed view because fault injection, quarantine and the cost model all
operate on *directed* links.

:meth:`Topology.validate` checks the structural invariants an instance
claims — in-range neighbour lists, no self-loops or duplicate links,
regular degree where ``claims_regular``, link symmetry where
``claims_symmetric``, and strong connectivity — raising a typed
:class:`TopologyError`.  The engine runs it at network construction;
results are memoized per canonical spec so repeated constructions (the
planner's shadow runs, worker pools) stay cheap.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

__all__ = ["Topology", "TopologyError"]


class TopologyError(ValueError):
    """A topology violates a structural invariant it claims to satisfy."""


#: Specs whose structural invariants already passed :meth:`Topology.validate`.
#: Keyed by the canonical spec plus node count, so two differently-sized
#: hypercubes (both spec ``"cube"``) validate independently.
_VALIDATED: set[tuple[str, int]] = set()


class Topology:
    """Abstract interconnect: nodes ``0..num_nodes-1`` plus directed links.

    Subclasses must set :attr:`name`, :attr:`spec`, :attr:`num_nodes`,
    :attr:`claims_regular`, :attr:`claims_symmetric` and implement
    :meth:`neighbors`.  Everything else has generic (BFS-based) defaults
    that analytic topologies override for speed.
    """

    #: Short family name ("cube", "torus", "mesh", "dragonfly").
    name: str = ""
    #: Canonical spec string, parseable by
    #: :func:`repro.topology.parse_topology` (the hypercube's is plain
    #: ``"cube"`` — its dimension travels with the machine parameters).
    spec: str = ""
    #: Total node count.
    num_nodes: int = 0
    #: Every node has the same degree.
    claims_regular: bool = True
    #: Directed link ``(a, b)`` exists iff ``(b, a)`` does.
    claims_symmetric: bool = True

    # -- graph surface -----------------------------------------------------

    def neighbors(self, x: int) -> tuple[int, ...]:
        """Out-neighbours of ``x`` in the topology's canonical order.

        The order is load-bearing: fault-tolerant routing scans detour
        candidates in it and :meth:`directed_links` derives the seeded
        fault-sampling order from it, so it must be deterministic.
        """
        raise NotImplementedError

    def degree(self, x: int) -> int:
        """Out-degree of node ``x``."""
        return len(self.neighbors(x))

    def has_link(self, src: int, dst: int) -> bool:
        """True iff the directed link ``src -> dst`` exists."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            return False
        return dst in self.neighbors(src)

    def directed_links(self) -> Iterator[tuple[int, int]]:
        """All directed links in canonical (node, neighbour-order) order.

        Seeded fault sampling iterates this, so the order is part of the
        reproducibility contract: for the hypercube it must match the
        historical ``for x: for d: (x, x ^ 2^d)`` stream byte-for-byte.
        """
        for x in range(self.num_nodes):
            for y in self.neighbors(x):
                yield (x, y)

    def num_links(self) -> int:
        """Total number of directed links."""
        return sum(self.degree(x) for x in range(self.num_nodes))

    # -- node / link validation -------------------------------------------

    def check_node(self, x: int) -> None:
        """Raise :class:`TopologyError` unless ``x`` is a valid node id."""
        if not (0 <= x < self.num_nodes):
            raise TopologyError(
                f"node {x} outside {self.spec or self.name} "
                f"(valid ids are 0..{self.num_nodes - 1})"
            )

    def check_link(self, src: int, dst: int) -> None:
        """Raise :class:`TopologyError` unless ``src -> dst`` is a link."""
        self.check_node(src)
        self.check_node(dst)
        if not self.has_link(src, dst):
            raise TopologyError(
                f"nodes {src} and {dst} are not neighbours in "
                f"{self.spec or self.name}"
            )

    # -- metric surface ----------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        """Shortest-path hop distance from ``a`` to ``b`` (BFS, memoized)."""
        return self._distances_from(a)[b]

    def minimal_hops(
        self, cur: int, dst: int, *, ascending: bool = True
    ) -> list[int]:
        """Neighbours of ``cur`` on some shortest path to ``dst``.

        This is the topology's routing hook: the generalized e-cube router
        tries these in order, and the order must be deterministic.  For
        the hypercube it is exactly the dimension-ordered candidate list,
        ascending (or descending when ``ascending=False``).  An empty list
        means ``cur == dst``.
        """
        if cur == dst:
            return []
        here = self.distance(cur, dst)
        hops = [y for y in self.neighbors(cur) if self.distance(y, dst) < here]
        if not ascending:
            hops.reverse()
        return hops

    @property
    def diameter(self) -> int:
        """Longest shortest path; bounds the router's detour budget."""
        cached = getattr(self, "_diameter", None)
        if cached is None:
            cached = max(
                max(self._distances_from(x)) for x in range(self.num_nodes)
            )
            self._diameter = cached
        return cached

    def bisection_links(self) -> int:
        """Directed links crossing the canonical even/odd-half node split.

        Coarse bandwidth metadata for reports and benchmarks: counts the
        directed links between nodes ``< N/2`` and nodes ``>= N/2``.
        Subclasses with a meaningful axis structure may override with the
        topology's true bisection.
        """
        half = self.num_nodes // 2
        return sum(
            1
            for x in range(self.num_nodes)
            for y in self.neighbors(x)
            if (x < half) != (y < half)
        )

    # -- invariants --------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants; raise :class:`TopologyError`.

        Checks, in order: neighbour lists are in range with no self-loops
        or duplicates; link symmetry (where claimed); regular degree
        (where claimed); strong connectivity.  Memoized per canonical
        spec + node count, so the engine can call this on every network
        construction at negligible cost.
        """
        key = (self.spec or self.name, self.num_nodes)
        if key in _VALIDATED:
            return
        if self.num_nodes < 1:
            raise TopologyError(
                f"{self.spec or self.name}: a topology needs at least one "
                f"node, got {self.num_nodes}"
            )
        adjacency: list[tuple[int, ...]] = []
        for x in range(self.num_nodes):
            nbrs = tuple(self.neighbors(x))
            for y in nbrs:
                if not (0 <= y < self.num_nodes):
                    raise TopologyError(
                        f"{self.spec or self.name}: node {x} lists "
                        f"out-of-range neighbour {y}"
                    )
            if x in nbrs:
                raise TopologyError(
                    f"{self.spec or self.name}: node {x} lists itself as a "
                    "neighbour (self-loops are not links)"
                )
            if len(set(nbrs)) != len(nbrs):
                raise TopologyError(
                    f"{self.spec or self.name}: node {x} lists a duplicate "
                    "neighbour"
                )
            adjacency.append(nbrs)
        if self.claims_symmetric:
            for x, nbrs in enumerate(adjacency):
                for y in nbrs:
                    if x not in adjacency[y]:
                        raise TopologyError(
                            f"{self.spec or self.name}: link {x}->{y} has no "
                            f"reverse {y}->{x} but the topology claims link "
                            "symmetry"
                        )
        if self.claims_regular:
            degrees = {len(nbrs) for nbrs in adjacency}
            if len(degrees) > 1:
                raise TopologyError(
                    f"{self.spec or self.name}: degrees {sorted(degrees)} "
                    "differ but the topology claims a regular degree"
                )
        self._check_strongly_connected(adjacency)
        _VALIDATED.add(key)

    def _check_strongly_connected(
        self, adjacency: list[tuple[int, ...]]
    ) -> None:
        reached = _bfs_reach(adjacency, 0)
        if len(reached) != self.num_nodes:
            raise TopologyError(
                f"{self.spec or self.name}: only {len(reached)} of "
                f"{self.num_nodes} nodes reachable from node 0 "
                "(topology is not connected)"
            )
        reverse: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for x, nbrs in enumerate(adjacency):
            for y in nbrs:
                reverse[y].append(x)
        back = _bfs_reach(reverse, 0)
        if len(back) != self.num_nodes:
            raise TopologyError(
                f"{self.spec or self.name}: only {len(back)} of "
                f"{self.num_nodes} nodes can reach node 0 "
                "(topology is not strongly connected)"
            )

    # -- description -------------------------------------------------------

    def describe(self) -> str:
        """One-line human summary for reports and CLI output."""
        return (
            f"{self.spec or self.name}: {self.num_nodes} nodes, "
            f"{self.num_links()} directed links, diameter {self.diameter}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec!r})"

    # -- internals ---------------------------------------------------------

    def _distances_from(self, src: int) -> list[int]:
        cache = getattr(self, "_dist_cache", None)
        if cache is None:
            cache = {}
            self._dist_cache = cache
        dist = cache.get(src)
        if dist is None:
            self.check_node(src)
            dist = [-1] * self.num_nodes
            dist[src] = 0
            queue = deque([src])
            while queue:
                x = queue.popleft()
                for y in self.neighbors(x):
                    if dist[y] < 0:
                        dist[y] = dist[x] + 1
                        queue.append(y)
            cache[src] = dist
        return dist


def _bfs_reach(adjacency, start: int) -> set[int]:
    seen = {start}
    queue = deque([start])
    while queue:
        x = queue.popleft()
        for y in adjacency[x]:
            if y not in seen:
                seen.add(y)
                queue.append(y)
    return seen
