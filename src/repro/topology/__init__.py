"""Pluggable interconnect topologies behind one engine.

The simulator historically hard-wired the Boolean n-cube.  This
subpackage abstracts the interconnect into a
:class:`~repro.topology.base.Topology` protocol — node set, directed
links, deterministic neighbour order, shortest-path routing hook,
structural invariants — with three instances:

* :class:`~repro.topology.hypercube.Hypercube` — the paper's n-cube,
  preserving the historical engine/router/fault behaviour bit-for-bit;
* :class:`~repro.topology.torus.TorusMesh` — k-ary n-dimensional torus
  (wrap optional: an open mesh);
* :class:`~repro.topology.dragonfly.SwappedDragonfly` — Draper's
  ``D3(K, M)`` swapped dragonfly.

:func:`parse_topology` turns CLI/request specs (``cube``,
``torus:4x4x4``, ``mesh:8x8``, ``dragonfly:2,4``) into instances, and
:func:`repro.topology.capabilities.supported_algorithms` tells the
planner which ladder tiers survive on each (routed-universal is the
floor everywhere).

Layering: this subpackage sits *below* :mod:`repro.machine` — it may
import :mod:`repro.cube` and :mod:`repro.codes` but never the engine.
"""

from __future__ import annotations

from repro.topology.base import Topology, TopologyError
from repro.topology.capabilities import capability_table, supported_algorithms
from repro.topology.dragonfly import SwappedDragonfly
from repro.topology.hypercube import Hypercube
from repro.topology.torus import TorusMesh

__all__ = [
    "Hypercube",
    "SwappedDragonfly",
    "Topology",
    "TopologyError",
    "TorusMesh",
    "capability_table",
    "parse_topology",
    "supported_algorithms",
]


def parse_topology(spec: str | Topology | None, n: int) -> Topology:
    """Build a :class:`Topology` from a CLI/request spec string.

    Accepted forms (case-insensitive family names):

    * ``cube`` or ``cube:K`` — Boolean K-cube (default dimension ``n``);
    * ``torus:4x4x4`` / ``mesh:8x8`` — per-axis radices joined by ``x``;
    * ``dragonfly:K,M`` — swapped dragonfly, K global ports, M groups
      of M routers.

    ``None`` and ``""`` mean the default ``n``-cube; an existing
    :class:`Topology` instance passes through unchanged.  Malformed or
    unknown specs raise :class:`TopologyError` naming the spec.
    """
    if isinstance(spec, Topology):
        return spec
    if spec is None or spec == "":
        return Hypercube(n)
    family, _, rest = spec.partition(":")
    family = family.strip().lower()
    rest = rest.strip()
    if family == "cube":
        dim = n if not rest else _int_field(spec, "dimension", rest)
        return Hypercube(dim)
    if family in ("torus", "mesh"):
        if not rest:
            raise TopologyError(
                f"topology spec {spec!r}: {family} needs axis radices, "
                f"e.g. '{family}:4x4x4'"
            )
        dims = [
            _int_field(spec, "axis radix", part) for part in rest.split("x")
        ]
        return TorusMesh(dims, wrap=family == "torus")
    if family == "dragonfly":
        parts = rest.split(",")
        if len(parts) != 2 or not rest:
            raise TopologyError(
                f"topology spec {spec!r}: dragonfly takes 'dragonfly:K,M' "
                "(K global ports, M groups of M routers)"
            )
        k = _int_field(spec, "K", parts[0])
        m = _int_field(spec, "M", parts[1])
        return SwappedDragonfly(k, m)
    raise TopologyError(
        f"unknown topology family {family!r} in spec {spec!r} "
        "(known: cube, torus, mesh, dragonfly)"
    )


def _int_field(spec: str, what: str, text: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise TopologyError(
            f"topology spec {spec!r}: {what} {text.strip()!r} is not an "
            "integer"
        ) from None
