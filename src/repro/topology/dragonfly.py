"""Draper's Swapped Dragonfly interconnect.

The Swapped Dragonfly ``D3(K, M)`` (Draper, *Four Algorithms on the
Swapped Dragonfly*, PAPERS.md) arranges ``M * M`` routers as ``M`` groups
of ``M``; every group is a complete graph over its ``M`` routers, and
each router owns ``K`` global ports.  We use the XOR-swap wiring: global
port ``k`` of router ``(g, r)`` connects to router ``(r ^ k, g ^ k)``.
That map is an involution — following port ``k`` twice returns to the
start — so every global link is automatically bidirectional, and ``K``
ports per router give ``K`` Latin-square-disjoint global matchings.
The port-0 matching is the classic swapped/OTIS wiring ``(g, r) ->
(r, g)``; its fixed points ``g == r`` (and in general ``g == r ^ k``)
would be self-loops and are skipped, which is why the topology is *not*
degree-regular: routers on a fixed point of some port have one global
link fewer.

``M`` must be a power of two (the XOR wiring needs it, and the matrix
workloads need a power-of-two node count); ``1 <= K <= M``.  Diameter is
small and computed by BFS — for ``K >= 1`` any router reaches any other
in at most ~3 hops (local, swap, local), which is the point of the
design: hypercube-like distances from constant per-router global ports.
"""

from __future__ import annotations

from repro.topology.base import Topology, TopologyError

__all__ = ["SwappedDragonfly"]


class SwappedDragonfly(Topology):
    """Swapped Dragonfly ``D3(K, M)``: ``M`` groups x ``M`` routers."""

    name = "dragonfly"
    claims_regular = False  # fixed-point ports drop a global link

    def __init__(self, K: int, M: int) -> None:
        if M < 2 or M & (M - 1):
            raise TopologyError(
                f"dragonfly group size M must be a power of two >= 2, got {M}"
            )
        if not 1 <= K <= M:
            raise TopologyError(
                f"dragonfly global port count K must satisfy 1 <= K <= M, "
                f"got K={K} with M={M}"
            )
        self.K = K
        self.M = M
        self.spec = f"dragonfly:{K},{M}"
        self.num_nodes = M * M

    # -- coordinates -------------------------------------------------------

    def group_router(self, x: int) -> tuple[int, int]:
        """(group, router) coordinates of node ``x``."""
        self.check_node(x)
        return divmod(x, self.M)

    def node_at(self, group: int, router: int) -> int:
        """Flat node id of router ``router`` in group ``group``."""
        if not (0 <= group < self.M and 0 <= router < self.M):
            raise TopologyError(
                f"{self.spec}: (group, router) = ({group}, {router}) outside "
                f"{self.M} groups of {self.M}"
            )
        return group * self.M + router

    # -- graph surface -----------------------------------------------------

    def neighbors(self, x: int) -> tuple[int, ...]:
        g, r = divmod(x, self.M)
        base = g * self.M
        out = [base + r2 for r2 in range(self.M) if r2 != r]
        for k in range(self.K):
            tg, tr = r ^ k, g ^ k
            if tg != g or tr != r:
                out.append(tg * self.M + tr)
        return tuple(out)

    def degree(self, x: int) -> int:
        g, r = divmod(x, self.M)
        skip = 1 if (g ^ r) < self.K else 0
        return (self.M - 1) + self.K - skip

    def num_links(self) -> int:
        return sum(self.degree(x) for x in range(self.num_nodes))
